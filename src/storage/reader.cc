#include "storage/reader.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "storage/codec.h"

namespace flexpath {
namespace storage {

namespace {

Counter* ColdBlockDecodes() {
  static Counter* c =
      MetricsRegistry::Global().counter("storage.cold_block_decodes");
  return c;
}

NodeRef RefOf(uint64_t key) {
  return NodeRef{static_cast<DocId>(key >> 32),
                 static_cast<NodeId>(key & 0xffffffffULL)};
}

uint64_t KeyOf(NodeRef ref) {
  return (static_cast<uint64_t>(ref.doc) << 32) | ref.node;
}

/// Reads a varint-length-prefixed string.
Status GetString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len = 0;
  FLEXPATH_RETURN_IF_ERROR(GetVarint(data, pos, &len));
  if (len > data.size() - *pos) {
    return Status::InvalidArgument("truncated string");
  }
  out->assign(data.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return Status::OK();
}

/// Expected skip-block count for an `n`-key list.
uint64_t BlocksFor(uint64_t n) { return (n + kBlockKeys - 1) / kBlockKeys; }

/// Charged pool size of a decoded element table.
size_t TagListBytes(const std::vector<NodeRef>& list) {
  return sizeof(std::vector<NodeRef>) + list.capacity() * sizeof(NodeRef);
}

/// Charged pool size of a decoded posting list.
size_t PostingListBytes(const PostingList& list) {
  size_t bytes = sizeof(PostingList);
  bytes += list.postings.capacity() * sizeof(Posting);
  for (const Posting& p : list.postings) {
    bytes += p.positions.capacity() * sizeof(uint32_t);
  }
  bytes += list.tf_prefix.capacity() * sizeof(uint64_t);
  return bytes;
}

/// First index in [0, n) whose skip first_key is >= key, by binary
/// search over the mmap'd skip slice.
size_t SkipLowerBound(const SkipEntry* skips, size_t n, uint64_t key) {
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (skips[mid].first_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status DecodePairMap(std::string_view data, size_t* pos,
                     std::unordered_map<uint64_t, uint64_t>* out) {
  uint64_t n = 0;
  FLEXPATH_RETURN_IF_ERROR(GetVarint(data, pos, &n));
  if (n > data.size() - *pos) {  // >= 2 bytes per entry would also hold.
    return Status::InvalidArgument("implausible stats map size");
  }
  out->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    uint64_t count = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(data, pos, &key));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(data, pos, &count));
    (*out)[key] = count;
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<StorageReader>> StorageReader::Open(
    const std::string& path, Options options) {
  const auto t0 = std::chrono::steady_clock::now();
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  // Not make_shared: the ctor is private.
  std::shared_ptr<StorageReader> reader(new StorageReader());
  reader->file_ = std::move(file).value();
  FLEXPATH_RETURN_IF_ERROR(reader->Validate());
  reader->SetPoolBudgets(options.elem_pool_bytes, options.post_pool_bytes);
  const double open_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  MetricsRegistry::Global()
      .histogram("storage.open_ms")
      ->Observe(open_ms);
  FLEXPATH_LOG_INFO("storage", "packed corpus opened", {"path", path},
                    {"bytes", reader->header_.file_bytes},
                    {"docs", reader->header_.doc_count},
                    {"terms", reader->header_.term_count},
                    {"open_ms", open_ms});
  return reader;
}

Status StorageReader::Validate() {
  const std::string_view view = file_.view();
  if (view.size() < sizeof(FileHeader)) {
    return Status::InvalidArgument("file too small for a packed corpus");
  }
  std::memcpy(&header_, view.data(), sizeof(FileHeader));
  if (header_.magic != kMagic) {
    return Status::InvalidArgument("not a packed corpus (bad magic)");
  }
  if (header_.endian_tag != kEndianTag) {
    return Status::InvalidArgument(
        "packed corpus was written on a machine with different endianness");
  }
  if (header_.version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported packed corpus version " +
        std::to_string(header_.version) + " (reader supports " +
        std::to_string(kFormatVersion) + ")");
  }
  if (header_.page_size != kPageSize) {
    return Status::InvalidArgument("unsupported page size " +
                                   std::to_string(header_.page_size));
  }
  if (header_.section_count != kSectionCount) {
    return Status::InvalidArgument("unexpected section count");
  }
  if (header_.file_bytes != view.size()) {
    return Status::InvalidArgument(
        "truncated packed corpus: header says " +
        std::to_string(header_.file_bytes) + " bytes, file has " +
        std::to_string(view.size()));
  }
  const size_t table_bytes = kSectionCount * sizeof(SectionRecord);
  if (view.size() < sizeof(FileHeader) + table_bytes) {
    return Status::InvalidArgument("truncated section table");
  }
  section_table_.resize(kSectionCount);
  std::memcpy(section_table_.data(), view.data() + sizeof(FileHeader),
              table_bytes);
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionRecord& rec = section_table_[i];
    if (rec.id != i + 1) {
      return Status::InvalidArgument("section table out of order");
    }
    if (rec.offset % kPageSize != 0) {
      return Status::InvalidArgument("section not page-aligned");
    }
    if (rec.offset > view.size() || rec.length > view.size() - rec.offset) {
      return Status::InvalidArgument("section extends past end of file");
    }
  }

  // Fixed-width directories: exact length check, then point straight
  // into the mapping (page alignment makes the casts aligned).
  const std::string_view doc_dir = Section(kSecDocDir);
  if (doc_dir.size() != header_.doc_count * sizeof(DocDirRecord)) {
    return Status::InvalidArgument("document directory length mismatch");
  }
  doc_dir_ = reinterpret_cast<const DocDirRecord*>(doc_dir.data());
  const std::string_view streams = Section(kSecNodeStreams);
  for (uint64_t d = 0; d < header_.doc_count; ++d) {
    const DocDirRecord& rec = doc_dir_[d];
    if (rec.offset > streams.size() ||
        rec.length > streams.size() - rec.offset) {
      return Status::InvalidArgument("node stream out of bounds for doc " +
                                     std::to_string(d));
    }
  }

  const std::string_view elem_dir = Section(kSecElemDir);
  if (elem_dir.size() != header_.tag_count * sizeof(ElemDirRecord)) {
    return Status::InvalidArgument("element directory length mismatch");
  }
  elem_dir_ = reinterpret_cast<const ElemDirRecord*>(elem_dir.data());
  const std::string_view elem_skips = Section(kSecElemSkips);
  if (elem_skips.size() % sizeof(SkipEntry) != 0) {
    return Status::InvalidArgument("element skip table length mismatch");
  }
  elem_skips_ = reinterpret_cast<const SkipEntry*>(elem_skips.data());
  elem_skip_count_ = elem_skips.size() / sizeof(SkipEntry);
  const std::string_view elem_blocks = Section(kSecElemBlocks);
  for (uint64_t t = 0; t < header_.tag_count; ++t) {
    const ElemDirRecord& rec = elem_dir_[t];
    if (rec.offset > elem_blocks.size() ||
        rec.length > elem_blocks.size() - rec.offset ||
        rec.skip_count != BlocksFor(rec.count) ||
        rec.skip_index > elem_skip_count_ ||
        rec.skip_count > elem_skip_count_ - rec.skip_index) {
      return Status::InvalidArgument("element directory entry " +
                                     std::to_string(t) + " out of bounds");
    }
  }

  const std::string_view term_dir = Section(kSecTermDir);
  if (term_dir.size() != header_.term_count * sizeof(TermDirRecord)) {
    return Status::InvalidArgument("term directory length mismatch");
  }
  term_dir_ = reinterpret_cast<const TermDirRecord*>(term_dir.data());
  const std::string_view post_skips = Section(kSecPostSkips);
  if (post_skips.size() % sizeof(SkipEntry) != 0) {
    return Status::InvalidArgument("posting skip table length mismatch");
  }
  post_skips_ = reinterpret_cast<const SkipEntry*>(post_skips.data());
  post_skip_count_ = post_skips.size() / sizeof(SkipEntry);
  const std::string_view strings = Section(kSecTermStrings);
  const std::string_view post_blocks = Section(kSecPostBlocks);
  for (uint64_t t = 0; t < header_.term_count; ++t) {
    const TermDirRecord& rec = term_dir_[t];
    if (rec.str_offset > strings.size() ||
        rec.str_length > strings.size() - rec.str_offset ||
        rec.post_offset > post_blocks.size() ||
        rec.post_length > post_blocks.size() - rec.post_offset ||
        rec.df == 0 || rec.skip_count != BlocksFor(rec.df) ||
        rec.skip_index > post_skip_count_ ||
        rec.skip_count > post_skip_count_ - rec.skip_index) {
      return Status::InvalidArgument("term directory entry " +
                                     std::to_string(t) + " out of bounds");
    }
    if (t > 0 && !(TermBytes(term_dir_[t - 1]) < TermBytes(rec))) {
      return Status::InvalidArgument("term directory is not sorted");
    }
  }
  return Status::OK();
}

Status StorageReader::LoadTags(TagDict* dict) const {
  if (dict->size() != 0) {
    return Status::InvalidArgument("tag dictionary must be empty");
  }
  const std::string_view sec = Section(kSecTagNames);
  size_t pos = 0;
  std::string name;
  for (uint64_t t = 0; t < header_.tag_count; ++t) {
    FLEXPATH_RETURN_IF_ERROR(GetString(sec, &pos, &name));
    if (dict->Intern(name) != static_cast<TagId>(t)) {
      return Status::InvalidArgument("duplicate tag name in packed corpus");
    }
  }
  if (pos != sec.size()) {
    return Status::InvalidArgument("trailing bytes after tag names");
  }
  return Status::OK();
}

Result<DocumentStats::Tables> StorageReader::LoadStatsTables() const {
  const std::string_view sec = Section(kSecStats);
  size_t pos = 0;
  DocumentStats::Tables tables;
  uint64_t n = 0;
  FLEXPATH_RETURN_IF_ERROR(GetVarint(sec, &pos, &n));
  if (n != header_.tag_count) {
    return Status::InvalidArgument("stats tag-count table length mismatch");
  }
  tables.tag_counts.resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    FLEXPATH_RETURN_IF_ERROR(GetVarint(sec, &pos, &tables.tag_counts[i]));
  }
  FLEXPATH_RETURN_IF_ERROR(DecodePairMap(sec, &pos, &tables.pc_counts));
  FLEXPATH_RETURN_IF_ERROR(DecodePairMap(sec, &pos, &tables.ad_counts));
  FLEXPATH_RETURN_IF_ERROR(DecodePairMap(sec, &pos, &tables.pc_exists));
  FLEXPATH_RETURN_IF_ERROR(DecodePairMap(sec, &pos, &tables.ad_exists));
  if (pos != sec.size()) {
    return Status::InvalidArgument("trailing bytes after stats tables");
  }
  return tables;
}

size_t StorageReader::DocNodeCount(DocId id) const {
  return id < header_.doc_count ? doc_dir_[id].node_count : 0;
}

Result<Document> StorageReader::MaterializeDocument(DocId id) const {
  if (id >= header_.doc_count) {
    return Status::OutOfRange("document id out of range");
  }
  static Counter* m_decodes =
      MetricsRegistry::Global().counter("storage.doc_decodes");
  static Counter* m_bytes =
      MetricsRegistry::Global().counter("storage.doc_decode_bytes");
  const DocDirRecord& rec = doc_dir_[id];
  const std::string_view stream = Section(kSecNodeStreams)
                                      .substr(static_cast<size_t>(rec.offset),
                                              static_cast<size_t>(rec.length));
  std::vector<Element> nodes(rec.node_count);
  size_t pos = 0;
  for (uint32_t n = 0; n < rec.node_count; ++n) {
    Element& e = nodes[n];
    uint64_t tag = 0;
    uint64_t parent = 0;
    uint64_t first_child = 0;
    uint64_t next_sibling = 0;
    uint64_t start = 0;
    uint64_t end = 0;
    uint64_t level = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &tag));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &parent));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &first_child));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &next_sibling));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &start));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &end));
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &level));
    if (tag >= header_.tag_count || parent > rec.node_count ||
        first_child > rec.node_count || next_sibling > rec.node_count ||
        start > UINT32_MAX || end > UINT32_MAX || level > UINT32_MAX) {
      return Status::InvalidArgument("corrupt node record in doc " +
                                     std::to_string(id));
    }
    e.tag = static_cast<TagId>(tag);
    e.parent = parent == 0 ? kInvalidNode : static_cast<NodeId>(parent - 1);
    e.first_child =
        first_child == 0 ? kInvalidNode : static_cast<NodeId>(first_child - 1);
    e.next_sibling = next_sibling == 0
                         ? kInvalidNode
                         : static_cast<NodeId>(next_sibling - 1);
    e.start = static_cast<uint32_t>(start);
    e.end = static_cast<uint32_t>(end);
    e.level = static_cast<uint32_t>(level);
    FLEXPATH_RETURN_IF_ERROR(GetString(stream, &pos, &e.text));
    uint64_t attr_count = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &attr_count));
    if (attr_count > stream.size() - pos) {
      return Status::InvalidArgument("implausible attribute count");
    }
    e.attrs.resize(static_cast<size_t>(attr_count));
    for (Attribute& a : e.attrs) {
      uint64_t name = 0;
      FLEXPATH_RETURN_IF_ERROR(GetVarint(stream, &pos, &name));
      if (name >= header_.tag_count) {
        return Status::InvalidArgument("corrupt attribute name");
      }
      a.name = static_cast<TagId>(name);
      FLEXPATH_RETURN_IF_ERROR(GetString(stream, &pos, &a.value));
    }
  }
  if (pos != stream.size()) {
    return Status::InvalidArgument("trailing bytes in node stream of doc " +
                                   std::to_string(id));
  }
  m_decodes->Inc();
  m_bytes->Inc(rec.length);
  return Document::Assemble(std::move(nodes));
}

size_t StorageReader::TagListCount(TagId tag) const {
  return tag < header_.tag_count
             ? static_cast<size_t>(elem_dir_[tag].count)
             : 0;
}

std::shared_ptr<const std::vector<NodeRef>> StorageReader::TagList(
    TagId tag) const {
  static Counter* m_hits =
      MetricsRegistry::Global().counter("storage.elem_pool_hits");
  static Counter* m_misses =
      MetricsRegistry::Global().counter("storage.elem_pool_misses");
  if (tag >= header_.tag_count) {
    return std::make_shared<const std::vector<NodeRef>>();
  }
  MutexLock lock(elem_pool_mu_);
  if (std::shared_ptr<const std::vector<NodeRef>> hit = elem_pool_.Get(tag)) {
    ++elem_hits_;
    m_hits->Inc();
    return hit;
  }
  ++elem_misses_;
  m_misses->Inc();
  const ElemDirRecord& rec = elem_dir_[tag];
  const std::string_view bytes = Section(kSecElemBlocks)
                                     .substr(static_cast<size_t>(rec.offset),
                                             static_cast<size_t>(rec.length));
  std::vector<uint64_t> keys;
  const Status decoded = DecodeKeyBlocks(bytes, rec.count, &keys);
  auto list = std::make_shared<std::vector<NodeRef>>();
  if (decoded.ok()) {
    list->reserve(keys.size());
    for (uint64_t key : keys) list->push_back(RefOf(key));
    ColdBlockDecodes()->Inc(rec.skip_count);
  } else {
    // TagList cannot return a Status; an empty list is well-defined (the
    // tag matches nothing) and the log line surfaces the corruption.
    FLEXPATH_LOG_ERROR("storage", "element table decode failed",
                       {"tag", static_cast<uint64_t>(tag)},
                       {"error", decoded.ToString()});
  }
  std::shared_ptr<const std::vector<NodeRef>> owned = std::move(list);
  elem_pool_.Put(tag, owned, TagListBytes(*owned));
  return owned;
}

std::string_view StorageReader::TermBytes(const TermDirRecord& rec) const {
  return Section(kSecTermStrings)
      .substr(static_cast<size_t>(rec.str_offset), rec.str_length);
}

int64_t StorageReader::FindTermIndex(std::string_view term) const {
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(header_.term_count);
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (TermBytes(term_dir_[mid]) < term) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < static_cast<int64_t>(header_.term_count) &&
      TermBytes(term_dir_[lo]) == term) {
    return lo;
  }
  return -1;
}

bool StorageReader::TermInfo(const std::string& term, uint32_t* df,
                             uint64_t* total_tf) const {
  const int64_t idx = FindTermIndex(term);
  if (idx < 0) return false;
  *df = term_dir_[idx].df;
  *total_tf = term_dir_[idx].total_tf;
  return true;
}

Status StorageReader::DecodePostingBlock(std::string_view post_bytes,
                                         const SkipEntry& skip,
                                         std::vector<Posting>* out) const {
  if (skip.offset > post_bytes.size()) {
    return Status::InvalidArgument("posting skip offset out of bounds");
  }
  if (skip.count > kBlockKeys) {
    return Status::InvalidArgument("implausible posting block count");
  }
  size_t pos = static_cast<size_t>(skip.offset);
  uint64_t key = 0;
  for (uint32_t j = 0; j < skip.count; ++j) {
    uint64_t v = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(post_bytes, &pos, &v));
    if (j == 0) {
      key = v;
    } else {
      if (v == 0) {
        return Status::InvalidArgument("zero key delta in posting block");
      }
      if (key > UINT64_MAX - v) {
        return Status::InvalidArgument("key overflow in posting block");
      }
      key += v;
    }
    uint64_t tf = 0;
    FLEXPATH_RETURN_IF_ERROR(GetVarint(post_bytes, &pos, &tf));
    // Each position costs >= 1 byte, so tf can never exceed the bytes
    // left — rejects corrupt tf values before they drive an allocation.
    if (tf == 0 || tf > post_bytes.size() - pos + 1) {
      return Status::InvalidArgument("implausible posting tf");
    }
    Posting p;
    p.node = RefOf(key);
    p.tf = static_cast<uint32_t>(tf);
    p.positions.reserve(static_cast<size_t>(tf));
    uint64_t position = 0;
    for (uint64_t k = 0; k < tf; ++k) {
      uint64_t pv = 0;
      FLEXPATH_RETURN_IF_ERROR(GetVarint(post_bytes, &pos, &pv));
      if (k == 0) {
        position = pv;
      } else {
        if (pv == 0) {
          return Status::InvalidArgument("zero position delta");
        }
        position += pv;
      }
      if (position > UINT32_MAX) {
        return Status::InvalidArgument("position overflow");
      }
      p.positions.push_back(static_cast<uint32_t>(position));
    }
    out->push_back(std::move(p));
  }
  ColdBlockDecodes()->Inc();
  return Status::OK();
}

std::shared_ptr<const PostingList> StorageReader::FindPostings(
    const std::string& term) const {
  static Counter* m_hits =
      MetricsRegistry::Global().counter("storage.post_pool_hits");
  static Counter* m_misses =
      MetricsRegistry::Global().counter("storage.post_pool_misses");
  const int64_t idx = FindTermIndex(term);
  if (idx < 0) return nullptr;
  MutexLock lock(post_pool_mu_);
  if (std::shared_ptr<const PostingList> hit =
          post_pool_.Get(static_cast<uint32_t>(idx))) {
    ++post_hits_;
    m_hits->Inc();
    return hit;
  }
  ++post_misses_;
  m_misses->Inc();
  const TermDirRecord& rec = term_dir_[idx];
  const std::string_view bytes =
      Section(kSecPostBlocks)
          .substr(static_cast<size_t>(rec.post_offset),
                  static_cast<size_t>(rec.post_length));
  auto list = std::make_shared<PostingList>();
  list->postings.reserve(rec.df);
  Status decoded = Status::OK();
  for (uint32_t b = 0; b < rec.skip_count && decoded.ok(); ++b) {
    decoded = DecodePostingBlock(bytes, post_skips_[rec.skip_index + b],
                                 &list->postings);
  }
  if (decoded.ok() && list->postings.size() != rec.df) {
    decoded = Status::InvalidArgument("posting count mismatch");
  }
  if (!decoded.ok()) {
    // Same contract as TagList: corruption yields an empty (matches
    // nothing) list plus a log line, never a crash.
    FLEXPATH_LOG_ERROR("storage", "posting list decode failed",
                       {"term", term}, {"error", decoded.ToString()});
    list->postings.clear();
  }
  list->tf_prefix.resize(list->postings.size() + 1, 0);
  for (size_t i = 0; i < list->postings.size(); ++i) {
    list->tf_prefix[i + 1] = list->tf_prefix[i] + list->postings[i].tf;
  }
  std::shared_ptr<const PostingList> owned = std::move(list);
  post_pool_.Put(static_cast<uint32_t>(idx), owned, PostingListBytes(*owned));
  return owned;
}

Result<uint64_t> StorageReader::RangeTermFrequency(const std::string& term,
                                                   uint64_t lo_key,
                                                   uint64_t hi_key) const {
  static Counter* m_seeks =
      MetricsRegistry::Global().counter("storage.range_tf_seeks");
  if (lo_key >= hi_key) return uint64_t{0};
  const int64_t idx = FindTermIndex(term);
  if (idx < 0) return uint64_t{0};
  const TermDirRecord& rec = term_dir_[idx];
  // Pooled fast path: an already-decoded list answers from its prefix
  // sums, exactly like the in-memory index.
  {
    MutexLock lock(post_pool_mu_);
    if (std::shared_ptr<const PostingList> list =
            post_pool_.Get(static_cast<uint32_t>(idx))) {
      ++post_hits_;
      auto lower = [&](uint64_t key) {
        auto it = std::lower_bound(
            list->postings.begin(), list->postings.end(), key,
            [](const Posting& p, uint64_t k) { return KeyOf(p.node) < k; });
        return static_cast<size_t>(it - list->postings.begin());
      };
      return list->tf_prefix[lower(hi_key)] - list->tf_prefix[lower(lo_key)];
    }
  }
  m_seeks->Inc();
  const SkipEntry* skips = post_skips_ + rec.skip_index;
  const std::string_view bytes =
      Section(kSecPostBlocks)
          .substr(static_cast<size_t>(rec.post_offset),
                  static_cast<size_t>(rec.post_length));
  // F(key) = sum of tf over postings with node key < `key`; the answer
  // is F(hi) - F(lo). Block b = the last block whose first key is below
  // `key`: earlier blocks are wholly below (their tf is the skip
  // aggregate), later ones wholly at-or-above, so only block b decodes.
  std::vector<Posting> block;
  auto prefix_tf = [&](uint64_t key) -> Result<uint64_t> {
    const size_t at_or_above = SkipLowerBound(skips, rec.skip_count, key);
    if (at_or_above == 0) return uint64_t{0};
    const SkipEntry& skip = skips[at_or_above - 1];
    block.clear();
    FLEXPATH_RETURN_IF_ERROR(DecodePostingBlock(bytes, skip, &block));
    uint64_t partial = 0;
    for (const Posting& p : block) {
      if (KeyOf(p.node) >= key) break;
      partial += p.tf;
    }
    return skip.aggregate + partial;
  };
  Result<uint64_t> hi = prefix_tf(hi_key);
  if (!hi.ok()) return hi.status();
  Result<uint64_t> lo = prefix_tf(lo_key);
  if (!lo.ok()) return lo.status();
  return hi.value() - lo.value();
}

StorageReader::PoolStats StorageReader::GetElemPoolStats() const {
  MutexLock lock(elem_pool_mu_);
  PoolStats s;
  s.hits = elem_hits_;
  s.misses = elem_misses_;
  s.evictions = elem_pool_.evictions();
  s.entries = elem_pool_.size();
  s.bytes = elem_pool_.bytes();
  s.budget = elem_pool_.budget();
  return s;
}

StorageReader::PoolStats StorageReader::GetPostPoolStats() const {
  MutexLock lock(post_pool_mu_);
  PoolStats s;
  s.hits = post_hits_;
  s.misses = post_misses_;
  s.evictions = post_pool_.evictions();
  s.entries = post_pool_.size();
  s.bytes = post_pool_.bytes();
  s.budget = post_pool_.budget();
  return s;
}

void StorageReader::SetPoolBudgets(size_t elem_pool_bytes,
                                   size_t post_pool_bytes) {
  {
    MutexLock lock(elem_pool_mu_);
    elem_pool_.SetBudget(elem_pool_bytes);
  }
  MutexLock lock(post_pool_mu_);
  post_pool_.SetBudget(post_pool_bytes);
}

std::string StorageReader::InspectJson() const {
  std::string out = "{\n";
  auto field = [&](const std::string& key, uint64_t value, bool comma) {
    out += "  \"" + key + "\": " + std::to_string(value) +
           (comma ? ",\n" : "\n");
  };
  out += "  \"magic\": \"FXPKCORP\",\n";
  field("version", header_.version, true);
  field("page_size", header_.page_size, true);
  field("tokenizer_flags", header_.tokenizer_flags, true);
  field("file_bytes", header_.file_bytes, true);
  field("doc_count", header_.doc_count, true);
  field("total_nodes", header_.total_nodes, true);
  field("tag_count", header_.tag_count, true);
  field("term_count", header_.term_count, true);
  field("total_elements", header_.total_elements, true);
  out += "  \"sections\": [\n";
  static constexpr const char* kSectionNames[] = {
      "tag_names",   "doc_dir",    "node_streams", "elem_dir",
      "elem_blocks", "elem_skips", "stats",        "term_dir",
      "term_strings", "post_blocks", "post_skips"};
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionRecord& rec = section_table_[i];
    out += "    {\"id\": " + std::to_string(rec.id) + ", \"name\": \"" +
           kSectionNames[i] + "\", \"offset\": " +
           std::to_string(rec.offset) + ", \"length\": " +
           std::to_string(rec.length) + "}" +
           (i + 1 < kSectionCount ? ",\n" : "\n");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace storage
}  // namespace flexpath
