#ifndef FLEXPATH_XML_TYPE_HIERARCHY_H_
#define FLEXPATH_XML_TYPE_HIERARCHY_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// An element-type (tag) hierarchy, enabling the tag-generalization
/// relaxation of the paper's Section 3.4: with `article` declared a
/// subtype of `publication`, the constraint $1.tag = article can be
/// relaxed to $1.tag = publication, and a query node constrained to
/// `publication` matches articles, books, etc.
///
/// The hierarchy is a forest: each tag has at most one direct supertype.
class TypeHierarchy {
 public:
  TypeHierarchy() = default;

  /// Declares `subtype`'s direct supertype. Fails if `subtype` already
  /// has one, or if the edge would create a cycle.
  Status AddSubtype(TagId supertype, TagId subtype);

  /// Direct supertype of `t`, or kInvalidTag if none.
  TagId SupertypeOf(TagId t) const;

  /// True iff `t` equals `ancestor` or is a transitive subtype of it.
  bool IsSubtypeOf(TagId t, TagId ancestor) const;

  /// `t` plus all transitive subtypes, in unspecified order.
  std::vector<TagId> SubtypeClosure(TagId t) const;

  bool empty() const { return supertype_.empty(); }

 private:
  std::unordered_map<TagId, TagId> supertype_;
  std::unordered_map<TagId, std::vector<TagId>> subtypes_;
};

}  // namespace flexpath

#endif  // FLEXPATH_XML_TYPE_HIERARCHY_H_
