#include "xml/corpus.h"

#include "xml/parser.h"

namespace flexpath {

DocId Corpus::Add(Document doc) {
  docs_.push_back(std::move(doc));
  return static_cast<DocId>(docs_.size() - 1);
}

Result<DocId> Corpus::AddXml(std::string_view xml) {
  Result<Document> doc = ParseXml(xml, &tags_);
  if (!doc.ok()) return doc.status();
  return Add(std::move(doc).value());
}

size_t Corpus::TotalNodes() const {
  size_t n = 0;
  for (const Document& d : docs_) n += d.size();
  return n;
}

}  // namespace flexpath
