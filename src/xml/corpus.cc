#include "xml/corpus.h"

#include <atomic>

#include "xml/parser.h"

namespace flexpath {

namespace {
/// Source of process-unique corpus generations (see Corpus::generation).
std::atomic<uint64_t> g_corpus_generation{0};
}  // namespace

DocId Corpus::Add(Document doc) {
  docs_.push_back(std::move(doc));
  generation_ =
      g_corpus_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  return static_cast<DocId>(docs_.size() - 1);
}

Result<DocId> Corpus::AddXml(std::string_view xml) {
  Result<Document> doc = ParseXml(xml, &tags_);
  if (!doc.ok()) return doc.status();
  return Add(std::move(doc).value());
}

size_t Corpus::TotalNodes() const {
  size_t n = 0;
  for (const Document& d : docs_) n += d.size();
  return n;
}

}  // namespace flexpath
