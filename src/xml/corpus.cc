#include "xml/corpus.h"

#include <atomic>
#include <utility>

#include "common/log.h"
#include "xml/parser.h"

namespace flexpath {

namespace {
/// Source of process-unique corpus generations (see Corpus::generation).
std::atomic<uint64_t> g_corpus_generation{0};
}  // namespace

DocId Corpus::Add(Document doc) {
  docs_.push_back(std::move(doc));
  generation_ =
      g_corpus_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  return static_cast<DocId>(docs_.size() - 1);
}

Result<DocId> Corpus::AddXml(std::string_view xml) {
  Result<Document> doc = ParseXml(xml, &tags_);
  if (!doc.ok()) return doc.status();
  return Add(std::move(doc).value());
}

void Corpus::AttachBacking(std::shared_ptr<const CorpusBacking> backing) {
  backing_ = std::move(backing);
  const size_t n = backing_->DocCount();
  docs_.clear();
  docs_.resize(n);  // Empty slots; filled on first touch.
  materialized_ = std::make_unique<std::atomic<bool>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    materialized_[i].store(false, std::memory_order_relaxed);
  }
  materialize_mu_ = std::make_unique<Mutex>();
  generation_ =
      g_corpus_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Corpus::MaterializeSlow(DocId id) const {
  MutexLock lock(*materialize_mu_);
  if (materialized_[id].load(std::memory_order_relaxed)) return;
  Result<Document> doc = backing_->MaterializeDocument(id);
  if (doc.ok()) {
    docs_[id] = std::move(doc).value();
  } else {
    // doc() cannot return a Status; an empty document keeps the engine
    // well-defined (the doc simply matches nothing) while the log line
    // makes the corruption visible.
    FLEXPATH_LOG_ERROR("storage", "document materialization failed",
                       {"doc", static_cast<uint64_t>(id)},
                       {"error", doc.status().ToString()});
  }
  materialized_[id].store(true, std::memory_order_release);
}

size_t Corpus::TotalNodes() const {
  size_t n = 0;
  for (size_t i = 0; i < docs_.size(); ++i) {
    n += DocSize(static_cast<DocId>(i));
  }
  return n;
}

}  // namespace flexpath
