#include "xml/type_hierarchy.h"

namespace flexpath {

Status TypeHierarchy::AddSubtype(TagId supertype, TagId subtype) {
  if (supertype == subtype) {
    return Status::InvalidArgument("a tag cannot be its own supertype");
  }
  if (supertype_.count(subtype) > 0) {
    return Status::InvalidArgument("subtype already has a supertype");
  }
  // Reject cycles: supertype must not be a (transitive) subtype of
  // subtype.
  if (IsSubtypeOf(supertype, subtype)) {
    return Status::InvalidArgument("edge would create a cycle");
  }
  supertype_[subtype] = supertype;
  subtypes_[supertype].push_back(subtype);
  return Status::OK();
}

TagId TypeHierarchy::SupertypeOf(TagId t) const {
  auto it = supertype_.find(t);
  return it == supertype_.end() ? kInvalidTag : it->second;
}

bool TypeHierarchy::IsSubtypeOf(TagId t, TagId ancestor) const {
  for (TagId cur = t; cur != kInvalidTag; cur = SupertypeOf(cur)) {
    if (cur == ancestor) return true;
  }
  return false;
}

std::vector<TagId> TypeHierarchy::SubtypeClosure(TagId t) const {
  std::vector<TagId> out = {t};
  for (size_t i = 0; i < out.size(); ++i) {
    auto it = subtypes_.find(out[i]);
    if (it == subtypes_.end()) continue;
    for (TagId sub : it->second) out.push_back(sub);
  }
  return out;
}

}  // namespace flexpath
