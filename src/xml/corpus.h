#ifndef FLEXPATH_XML_CORPUS_H_
#define FLEXPATH_XML_CORPUS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "xml/document.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Index of a document within a Corpus.
using DocId = uint32_t;

/// A (document, node) handle identifying one element anywhere in a corpus.
/// Orders by (doc, node) — i.e., global document order — which is the sort
/// order the structural join expects.
struct NodeRef {
  DocId doc = 0;
  NodeId node = 0;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

/// Hash functor for NodeRef keys (answer sets, cache maps). The single
/// definition used throughout the engine.
struct NodeRefHash {
  size_t operator()(const NodeRef& r) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(r.doc) << 32) |
                                 r.node);
  }
};

/// Pluggable on-demand document source. A backed corpus (see
/// Corpus::AttachBacking) starts with every slot empty and decodes a
/// document the first time it is touched — this is what makes
/// FlexPath::OpenPacked pay-per-touch instead of load-everything. The
/// packed-file implementation lives in storage/reader.h; the interface is
/// declared here so xml/ stays independent of storage/.
class CorpusBacking {
 public:
  virtual ~CorpusBacking() = default;

  /// Number of documents the backing can produce.
  virtual size_t DocCount() const = 0;

  /// Element-node count of document `id`, answered without decoding it.
  virtual size_t DocNodeCount(DocId id) const = 0;

  /// Decodes document `id`. Called at most once per slot (the corpus
  /// memoizes the result); errors surface as an empty document plus a
  /// log line, since doc() cannot return a Status.
  virtual Result<Document> MaterializeDocument(DocId id) const = 0;
};

/// A collection of XML documents sharing one tag dictionary. This is the
/// "XML database D" of the paper. Documents are immutable once added;
/// indexes (see src/ir, src/stats, src/exec) are built over a frozen
/// corpus.
///
/// Two modes: an in-memory corpus owns its documents outright (Add /
/// AddXml), while a backed corpus (AttachBacking) materializes documents
/// lazily from a CorpusBacking. In both modes doc()/node() hand out
/// references that stay valid for the corpus lifetime — a materialized
/// document is never evicted, so downstream indexes can hold Element
/// pointers exactly as they always have.
class Corpus {
 public:
  Corpus() = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Adds an already-built document (e.g., from DocumentBuilder or the
  /// XMark generator). The document must have been built against tags().
  /// Must not be called on a backed corpus.
  DocId Add(Document doc);

  /// Parses `xml` and adds the resulting document.
  Result<DocId> AddXml(std::string_view xml);

  /// Switches this (empty) corpus to lazy mode: `size()` becomes
  /// `backing->DocCount()`, all slots start unmaterialized, and tag
  /// names must already have been interned into tags() by the caller.
  /// Bumps generation like Add.
  void AttachBacking(std::shared_ptr<const CorpusBacking> backing);

  bool backed() const { return backing_ != nullptr; }

  size_t size() const { return docs_.size(); }

  const Document& doc(DocId id) const {
    if (backing_ != nullptr &&
        !materialized_[id].load(std::memory_order_acquire)) {
      MaterializeSlow(id);
    }
    return docs_[id];
  }

  const Element& node(NodeRef ref) const {
    return doc(ref.doc).node(ref.node);
  }

  /// Element count of document `id` without materializing it.
  size_t DocSize(DocId id) const {
    return backing_ != nullptr ? backing_->DocNodeCount(id)
                               : docs_[id].size();
  }

  TagDict* tags() { return &tags_; }
  const TagDict& tags() const { return tags_; }

  /// Total number of element nodes across all documents. Served from the
  /// directory in backed mode (no materialization).
  size_t TotalNodes() const;

  /// True iff `a` is a proper ancestor of `d` (requires same document).
  bool IsAncestor(NodeRef a, NodeRef d) const {
    return a.doc == d.doc && doc(a.doc).IsAncestor(a.node, d.node);
  }

  /// True iff `a` is the parent of `d` (requires same document).
  bool IsParent(NodeRef a, NodeRef d) const {
    return a.doc == d.doc && doc(a.doc).IsParent(a.node, d.node);
  }

  /// Content-state counter for cache invalidation: 0 for an empty corpus,
  /// and a fresh process-unique value after every Add — so no two
  /// distinct corpus states, even of different Corpus instances, ever
  /// share a nonzero generation. Cache entries keyed by generation are
  /// therefore unreachable the moment the corpus (or any other corpus
  /// reusing the cache) changes.
  uint64_t generation() const { return generation_; }

 private:
  /// Cold path of doc(): decodes and installs the document under
  /// materialize_mu_, then release-stores the flag the fast path
  /// acquire-loads — so a reader that skips the lock still sees the
  /// fully written Document.
  void MaterializeSlow(DocId id) const;

  TagDict tags_;
  /// Slots are written at most once after AttachBacking (under
  /// materialize_mu_, published via materialized_[id]); logically const.
  mutable std::vector<Document> docs_;
  uint64_t generation_ = 0;

  std::shared_ptr<const CorpusBacking> backing_;
  mutable std::unique_ptr<std::atomic<bool>[]> materialized_;
  mutable std::unique_ptr<Mutex> materialize_mu_;
};

}  // namespace flexpath

#endif  // FLEXPATH_XML_CORPUS_H_
