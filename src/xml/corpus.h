#ifndef FLEXPATH_XML_CORPUS_H_
#define FLEXPATH_XML_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Index of a document within a Corpus.
using DocId = uint32_t;

/// A (document, node) handle identifying one element anywhere in a corpus.
/// Orders by (doc, node) — i.e., global document order — which is the sort
/// order the structural join expects.
struct NodeRef {
  DocId doc = 0;
  NodeId node = 0;

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

/// Hash functor for NodeRef keys (answer sets, cache maps). The single
/// definition used throughout the engine.
struct NodeRefHash {
  size_t operator()(const NodeRef& r) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(r.doc) << 32) |
                                 r.node);
  }
};

/// A collection of XML documents sharing one tag dictionary. This is the
/// "XML database D" of the paper. Documents are immutable once added;
/// indexes (see src/ir, src/stats, src/exec) are built over a frozen
/// corpus.
class Corpus {
 public:
  Corpus() = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Adds an already-built document (e.g., from DocumentBuilder or the
  /// XMark generator). The document must have been built against tags().
  DocId Add(Document doc);

  /// Parses `xml` and adds the resulting document.
  Result<DocId> AddXml(std::string_view xml);

  size_t size() const { return docs_.size(); }
  const Document& doc(DocId id) const { return docs_[id]; }
  const Element& node(NodeRef ref) const {
    return docs_[ref.doc].node(ref.node);
  }

  TagDict* tags() { return &tags_; }
  const TagDict& tags() const { return tags_; }

  /// Total number of element nodes across all documents.
  size_t TotalNodes() const;

  /// True iff `a` is a proper ancestor of `d` (requires same document).
  bool IsAncestor(NodeRef a, NodeRef d) const {
    return a.doc == d.doc && docs_[a.doc].IsAncestor(a.node, d.node);
  }

  /// True iff `a` is the parent of `d` (requires same document).
  bool IsParent(NodeRef a, NodeRef d) const {
    return a.doc == d.doc && docs_[a.doc].IsParent(a.node, d.node);
  }

  /// Content-state counter for cache invalidation: 0 for an empty corpus,
  /// and a fresh process-unique value after every Add — so no two
  /// distinct corpus states, even of different Corpus instances, ever
  /// share a nonzero generation. Cache entries keyed by generation are
  /// therefore unreachable the moment the corpus (or any other corpus
  /// reusing the cache) changes.
  uint64_t generation() const { return generation_; }

 private:
  TagDict tags_;
  std::vector<Document> docs_;
  uint64_t generation_ = 0;
};

}  // namespace flexpath

#endif  // FLEXPATH_XML_CORPUS_H_
