#ifndef FLEXPATH_XML_BINARY_CODEC_H_
#define FLEXPATH_XML_BINARY_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xml/corpus.h"

namespace flexpath {

/// Compact binary snapshot of a corpus (tag dictionary + documents with
/// structure, text and attributes), so large collections load without
/// re-parsing XML. Varint-encoded; format:
///   magic "FXP2" | version varint (= 2) | byte-order guard 01 02 03 04 |
///   tag dictionary | document count | per document: node count, then per
///   node: tag, parent+1, text, attribute list.
/// Interval numbers and sibling links are *recomputed* on load (they are
/// derivable), which keeps the snapshot small and the loader the single
/// source of truth for the encoding invariants.
///
/// Version history: "FXP1" snapshots (no version byte, no byte-order
/// guard) are rejected with a clear "unsupported snapshot version"
/// Status — re-save with this build. The payload is varints + strings
/// and therefore byte-order independent; the guard exists to reject
/// corrupted headers and any writer that emitted raw integers.
std::string EncodeCorpus(const Corpus& corpus);

/// Decodes a snapshot produced by EncodeCorpus. Fails (without crashing)
/// on truncated or corrupted input.
Result<Corpus> DecodeCorpus(std::string_view data);

/// Convenience file wrappers.
Status SaveCorpus(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpus(const std::string& path);

}  // namespace flexpath

#endif  // FLEXPATH_XML_BINARY_CODEC_H_
