#include "xml/tag_dict.h"

#include <cassert>

namespace flexpath {

TagId TagDict::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagDict::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidTag : it->second;
}

const std::string& TagDict::Name(TagId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace flexpath
