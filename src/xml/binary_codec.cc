#include "xml/binary_codec.h"

#include <fstream>
#include <sstream>

#include "xml/document.h"

namespace flexpath {

namespace {

constexpr std::string_view kMagic = "FXP2";
constexpr std::string_view kOldMagicV1 = "FXP1";
constexpr uint64_t kSnapshotVersion = 2;
/// Fixed byte sentinel after the version: catches corrupted headers and
/// writers that emitted raw multi-byte integers in a different byte
/// order (the payload itself is varints + strings, which are
/// byte-order independent — the guard protects the header contract).
constexpr std::string_view kEndianMark = "\x01\x02\x03\x04";

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutString(std::string_view s, std::string* out) {
  PutVarint(s.size(), out);
  out->append(s);
}

/// Bounds-checked reader over the snapshot buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) {
        return Status::InvalidArgument("truncated varint");
      }
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 63 && byte > 1) {
        return Status::InvalidArgument("varint overflow");
      }
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    *out = value;
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint64_t len = 0;
    FLEXPATH_RETURN_IF_ERROR(ReadVarint(&len));
    if (len > data_.size() - pos_) {
      return Status::InvalidArgument("truncated string");
    }
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status ReadBytes(size_t n, std::string* out) {
    if (n > data_.size() - pos_ || pos_ >= data_.size()) {
      return Status::InvalidArgument("truncated corpus snapshot header");
    }
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeCorpus(const Corpus& corpus) {
  std::string out;
  out.append(kMagic);
  PutVarint(kSnapshotVersion, &out);
  out.append(kEndianMark);
  const TagDict& tags = corpus.tags();
  PutVarint(tags.size(), &out);
  for (TagId t = 0; t < tags.size(); ++t) PutString(tags.Name(t), &out);
  PutVarint(corpus.size(), &out);
  for (DocId d = 0; d < corpus.size(); ++d) {
    const Document& doc = corpus.doc(d);
    PutVarint(doc.size(), &out);
    for (NodeId n = 0; n < doc.size(); ++n) {
      const Element& e = doc.node(n);
      PutVarint(e.tag, &out);
      // Parents precede children in pre-order, so parent+1 fits and 0
      // marks the root.
      PutVarint(e.parent == kInvalidNode ? 0 : uint64_t{e.parent} + 1,
                &out);
      PutString(e.text, &out);
      PutVarint(e.attrs.size(), &out);
      for (const Attribute& a : e.attrs) {
        PutVarint(a.name, &out);
        PutString(a.value, &out);
      }
    }
  }
  return out;
}

Result<Corpus> DecodeCorpus(std::string_view data) {
  if (data.size() < kMagic.size()) {
    return Status::InvalidArgument(
        "truncated corpus snapshot: shorter than the magic header");
  }
  if (data.substr(0, kMagic.size()) != kMagic) {
    if (data.substr(0, kOldMagicV1.size()) == kOldMagicV1) {
      return Status::InvalidArgument(
          "unsupported snapshot version: this is a FXP1 (version 1) "
          "snapshot; re-save it with this build (which writes FXP2)");
    }
    return Status::InvalidArgument("not a FleXPath corpus snapshot");
  }
  Reader reader(data.substr(kMagic.size()));
  uint64_t version = 0;
  FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }
  std::string endian_mark;
  FLEXPATH_RETURN_IF_ERROR(reader.ReadBytes(kEndianMark.size(), &endian_mark));
  if (endian_mark != kEndianMark) {
    return Status::InvalidArgument(
        "corpus snapshot byte-order guard mismatch: the file was written "
        "with a different byte order or its header is corrupt");
  }
  Corpus corpus;

  uint64_t tag_count = 0;
  FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&tag_count));
  if (tag_count > data.size()) {
    return Status::InvalidArgument("implausible tag count");
  }
  for (uint64_t i = 0; i < tag_count; ++i) {
    std::string name;
    FLEXPATH_RETURN_IF_ERROR(reader.ReadString(&name));
    const TagId id = corpus.tags()->Intern(name);
    if (id != i) {
      return Status::InvalidArgument("duplicate tag in snapshot");
    }
  }

  uint64_t doc_count = 0;
  FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&doc_count));
  if (doc_count > data.size()) {
    return Status::InvalidArgument("implausible document count");
  }
  for (uint64_t d = 0; d < doc_count; ++d) {
    uint64_t node_count = 0;
    FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&node_count));
    if (node_count > data.size()) {
      return Status::InvalidArgument("implausible node count");
    }
    // Rebuild through DocumentBuilder so interval numbers, levels and
    // sibling links are recomputed and validated. Nodes arrive in
    // pre-order; we close elements when the next node's parent pops us.
    DocumentBuilder builder(corpus.tags());
    std::vector<NodeId> stack;  // open node ids (original numbering)
    for (uint64_t n = 0; n < node_count; ++n) {
      uint64_t tag = 0;
      uint64_t parent_plus1 = 0;
      std::string text;
      FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&tag));
      FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&parent_plus1));
      FLEXPATH_RETURN_IF_ERROR(reader.ReadString(&text));
      if (tag >= corpus.tags()->size()) {
        return Status::InvalidArgument("tag id out of range");
      }
      if (parent_plus1 > n) {
        return Status::InvalidArgument("forward parent reference");
      }
      const NodeId parent =
          parent_plus1 == 0 ? kInvalidNode
                            : static_cast<NodeId>(parent_plus1 - 1);
      while (!stack.empty() && stack.back() != parent) {
        FLEXPATH_RETURN_IF_ERROR(builder.Close());
        stack.pop_back();
      }
      if (stack.empty() && parent != kInvalidNode) {
        return Status::InvalidArgument("parent not on the open path");
      }
      builder.Open(corpus.tags()->Name(static_cast<TagId>(tag)));
      stack.push_back(static_cast<NodeId>(n));
      uint64_t attr_count = 0;
      FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&attr_count));
      if (attr_count > data.size()) {
        return Status::InvalidArgument("implausible attribute count");
      }
      for (uint64_t a = 0; a < attr_count; ++a) {
        uint64_t name = 0;
        std::string value;
        FLEXPATH_RETURN_IF_ERROR(reader.ReadVarint(&name));
        FLEXPATH_RETURN_IF_ERROR(reader.ReadString(&value));
        if (name >= corpus.tags()->size()) {
          return Status::InvalidArgument("attribute id out of range");
        }
        FLEXPATH_RETURN_IF_ERROR(builder.Attr(
            corpus.tags()->Name(static_cast<TagId>(name)), value));
      }
      if (!text.empty()) {
        FLEXPATH_RETURN_IF_ERROR(builder.Text(text));
      }
    }
    while (!stack.empty()) {
      FLEXPATH_RETURN_IF_ERROR(builder.Close());
      stack.pop_back();
    }
    Result<Document> doc = std::move(builder).Finish();
    if (!doc.ok()) return doc.status();
    corpus.Add(std::move(doc).value());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot");
  }
  return corpus;
}

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  const std::string data = EncodeCorpus(corpus);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<Corpus> LoadCorpus(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DecodeCorpus(buffer.str());
}

}  // namespace flexpath
