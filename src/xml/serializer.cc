#include "xml/serializer.h"

#include "common/string_util.h"

namespace flexpath {

namespace {

void SerializeNode(const Document& doc, const TagDict& dict, NodeId id,
                   const SerializeOptions& opts, int depth,
                   std::string* out) {
  const Element& e = doc.node(id);
  auto indent = [&](int d) {
    if (opts.pretty) {
      out->append("\n");
      out->append(static_cast<size_t>(d * opts.indent_width), ' ');
    }
  };
  if (opts.pretty && depth > 0) indent(depth);
  else if (opts.pretty && depth == 0 && !out->empty()) indent(0);

  *out += '<';
  *out += dict.Name(e.tag);
  for (const Attribute& a : e.attrs) {
    *out += ' ';
    *out += dict.Name(a.name);
    *out += "=\"";
    *out += XmlEscape(a.value);
    *out += '"';
  }
  bool has_children = e.first_child != kInvalidNode;
  if (!has_children && e.text.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  if (!e.text.empty()) {
    if (opts.pretty && has_children) indent(depth + 1);
    *out += XmlEscape(e.text);
  }
  for (NodeId c = e.first_child; c != kInvalidNode;
       c = doc.node(c).next_sibling) {
    SerializeNode(doc, dict, c, opts, depth + 1, out);
  }
  if (opts.pretty && has_children) indent(depth);
  *out += "</";
  *out += dict.Name(e.tag);
  *out += '>';
}

}  // namespace

std::string SerializeXml(const Document& doc, const TagDict& dict,
                         const SerializeOptions& opts) {
  std::string out;
  if (doc.empty()) return out;
  SerializeNode(doc, dict, doc.root(), opts, 0, &out);
  if (opts.pretty) out += '\n';
  return out;
}

}  // namespace flexpath
