#ifndef FLEXPATH_XML_TAG_DICT_H_
#define FLEXPATH_XML_TAG_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flexpath {

/// Id type for interned tag (element/attribute) names.
using TagId = uint32_t;

/// Sentinel meaning "no tag" / "any tag" depending on context.
inline constexpr TagId kInvalidTag = UINT32_MAX;

/// Interns tag and attribute names so documents and indexes store small
/// integer ids instead of strings. One dictionary is shared by all
/// documents of a Corpus; ids are stable for the dictionary's lifetime.
/// Not thread-safe; guard externally if interning from multiple threads.
class TagDict {
 public:
  TagDict() = default;
  TagDict(const TagDict&) = delete;
  TagDict& operator=(const TagDict&) = delete;
  TagDict(TagDict&&) = default;
  TagDict& operator=(TagDict&&) = default;

  /// Returns the id for `name`, interning it on first use.
  TagId Intern(std::string_view name);

  /// Returns the id for `name`, or kInvalidTag if it was never interned.
  TagId Lookup(std::string_view name) const;

  /// Returns the name for `id`. id must be a valid interned id.
  const std::string& Name(TagId id) const;

  /// Number of distinct interned names.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

}  // namespace flexpath

#endif  // FLEXPATH_XML_TAG_DICT_H_
