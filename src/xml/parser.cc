#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace flexpath {

namespace {

/// Hand-rolled recursive-descent XML parser. Tracks line/column for error
/// messages; pushes events into a DocumentBuilder.
class XmlParser {
 public:
  XmlParser(std::string_view input, TagDict* dict)
      : in_(input), builder_(dict) {}

  Result<Document> Parse() {
    SkipProlog();
    // Status converts implicitly to Result<Document>, so the shared
    // propagation macro works here too.
    FLEXPATH_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (!AtEnd()) return Err("trailing content after root element");
    return std::move(builder_).Finish();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }

  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (in_.size() - pos_ < lit.size()) return false;
    if (in_.substr(pos_, lit.size()) != lit) return false;
    AdvanceBy(lit.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Err(std::string msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ", col " +
                              std::to_string(col_) + ": " + std::move(msg));
  }

  /// Skips the XML declaration, DOCTYPE, comments, PIs and whitespace that
  /// may precede the root element.
  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return;
      if (ConsumeComment()) continue;
      if (Peek() == '<' && PeekAt(1) == '?') {
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '!') {
        // DOCTYPE; skip to the matching '>' honoring an internal subset.
        SkipDoctype();
        continue;
      }
      return;
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (ConsumeComment()) continue;
      if (!AtEnd() && Peek() == '<' && PeekAt(1) == '?') {
        SkipUntil("?>");
        continue;
      }
      return;
    }
  }

  bool ConsumeComment() {
    if (!(Peek() == '<' && PeekAt(1) == '!' && PeekAt(2) == '-' &&
          PeekAt(3) == '-')) {
      return false;
    }
    AdvanceBy(4);
    SkipUntil("-->");
    return true;
  }

  void SkipUntil(std::string_view end) {
    while (!AtEnd()) {
      if (in_.size() - pos_ >= end.size() &&
          in_.substr(pos_, end.size()) == end) {
        AdvanceBy(end.size());
        return;
      }
      Advance();
    }
  }

  void SkipDoctype() {
    // At "<!DOCTYPE". Track bracket depth for the internal subset.
    int depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == '>' && depth <= 0) return;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Status ParseName(std::string* out) {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t begin = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    *out = std::string(in_.substr(begin, pos_ - begin));
    return Status::OK();
  }

  /// Decodes one entity/char reference starting at '&'; appends to *out.
  Status ParseReference(std::string* out) {
    Advance();  // consume '&'
    size_t begin = pos_;
    while (!AtEnd() && Peek() != ';') {
      if (pos_ - begin > 16) return Err("unterminated entity reference");
      Advance();
    }
    if (AtEnd()) return Err("unterminated entity reference");
    std::string_view name = in_.substr(begin, pos_ - begin);
    Advance();  // consume ';'
    if (name == "amp") {
      *out += '&';
    } else if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Err("empty character reference");
      unsigned long cp = 0;
      for (char c : digits) {
        int v;
        if (c >= '0' && c <= '9') {
          v = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          v = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          v = c - 'A' + 10;
        } else {
          return Err("bad character reference");
        }
        cp = cp * static_cast<unsigned long>(base) + static_cast<unsigned long>(v);
        if (cp > 0x10FFFF) return Err("character reference out of range");
      }
      AppendUtf8(static_cast<uint32_t>(cp), out);
    } else {
      return Err("unknown entity '&" + std::string(name) + ";'");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseAttributes(bool* self_closing) {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>') {
        Advance();
        *self_closing = false;
        return Status::OK();
      }
      if (Peek() == '/' && PeekAt(1) == '>') {
        AdvanceBy(2);
        *self_closing = true;
        return Status::OK();
      }
      std::string name;
      FLEXPATH_RETURN_IF_ERROR(ParseName(&name));
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Err("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      std::string value;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '&') {
          FLEXPATH_RETURN_IF_ERROR(ParseReference(&value));
        } else {
          value += Peek();
          Advance();
        }
      }
      if (AtEnd()) return Err("unterminated attribute value");
      Advance();  // closing quote
      FLEXPATH_RETURN_IF_ERROR(builder_.Attr(name, value));
    }
  }

  Status ParseElement() {
    if (AtEnd() || Peek() != '<') return Err("expected '<'");
    Advance();
    std::string tag;
    FLEXPATH_RETURN_IF_ERROR(ParseName(&tag));
    builder_.Open(tag);
    bool self_closing = false;
    FLEXPATH_RETURN_IF_ERROR(ParseAttributes(&self_closing));
    if (self_closing) return builder_.Close();
    return ParseContent(tag);
  }

  Status ParseContent(const std::string& open_tag) {
    std::string text;
    auto flush_text = [&]() -> Status {
      std::string_view trimmed = Trim(text);
      Status st;
      if (!trimmed.empty()) st = builder_.Text(trimmed);
      text.clear();
      return st;
    };
    for (;;) {
      if (AtEnd()) return Err("unterminated element <" + open_tag + ">");
      char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          FLEXPATH_RETURN_IF_ERROR(flush_text());
          AdvanceBy(2);
          std::string close;
          FLEXPATH_RETURN_IF_ERROR(ParseName(&close));
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Err("malformed end tag");
          Advance();
          if (close != open_tag) {
            return Err("mismatched end tag </" + close + ">, expected </" +
                       open_tag + ">");
          }
          return builder_.Close();
        }
        if (ConsumeComment()) continue;
        if (PeekAt(1) == '?') {
          SkipUntil("?>");
          continue;
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '[') {
          // CDATA section.
          if (!ConsumeLiteral("<![CDATA[")) return Err("malformed CDATA");
          size_t begin = pos_;
          while (!AtEnd() && !(Peek() == ']' && PeekAt(1) == ']' &&
                               PeekAt(2) == '>')) {
            Advance();
          }
          if (AtEnd()) return Err("unterminated CDATA section");
          text += in_.substr(begin, pos_ - begin);
          AdvanceBy(3);
          continue;
        }
        FLEXPATH_RETURN_IF_ERROR(flush_text());
        FLEXPATH_RETURN_IF_ERROR(ParseElement());
        continue;
      }
      if (c == '&') {
        FLEXPATH_RETURN_IF_ERROR(ParseReference(&text));
        continue;
      }
      text += c;
      Advance();
    }
  }

  std::string_view in_;
  DocumentBuilder builder_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<Document> ParseXml(std::string_view input, TagDict* dict) {
  XmlParser parser(input, dict);
  return parser.Parse();
}

}  // namespace flexpath
