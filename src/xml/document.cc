#include "xml/document.h"

#include <cassert>

namespace flexpath {

std::string Document::SubtreeText(NodeId id) const {
  std::string out;
  const Element& top = nodes_[id];
  // Subtree of a pre-order node is the contiguous id range [id, x) where x
  // is the first node whose start exceeds top.end.
  for (NodeId i = id; i < nodes_.size() && nodes_[i].start < top.end; ++i) {
    const std::string& t = nodes_[i].text;
    if (t.empty()) continue;
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = nodes_[id].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

const std::string* Document::FindAttribute(NodeId id, TagId name) const {
  for (const Attribute& a : nodes_[id].attrs) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

NodeId DocumentBuilder::Open(std::string_view tag) {
  if (!error_.ok()) return kInvalidNode;
  if (stack_.empty() && root_done_) {
    error_ = Status::InvalidArgument("document has more than one root");
    return kInvalidNode;
  }
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  Element e;
  e.tag = dict_->Intern(tag);
  e.start = counter_++;
  e.level = static_cast<uint32_t>(stack_.size());
  if (!stack_.empty()) {
    NodeId parent = stack_.back();
    e.parent = parent;
    NodeId prev = last_child_.back();
    if (prev == kInvalidNode) {
      doc_.nodes_[parent].first_child = id;
    } else {
      doc_.nodes_[prev].next_sibling = id;
    }
    last_child_.back() = id;
  }
  doc_.nodes_.push_back(std::move(e));
  stack_.push_back(id);
  last_child_.push_back(kInvalidNode);
  return id;
}

Status DocumentBuilder::Attr(std::string_view name, std::string_view value) {
  if (!error_.ok()) return error_;
  if (stack_.empty()) {
    return error_ = Status::InvalidArgument("Attr with no open element");
  }
  Element& e = doc_.nodes_[stack_.back()];
  e.attrs.push_back(Attribute{dict_->Intern(name), std::string(value)});
  return Status::OK();
}

Status DocumentBuilder::Text(std::string_view text) {
  if (!error_.ok()) return error_;
  if (stack_.empty()) {
    return error_ = Status::InvalidArgument("Text with no open element");
  }
  Element& e = doc_.nodes_[stack_.back()];
  if (!e.text.empty()) e.text += ' ';
  e.text += text;
  return Status::OK();
}

Status DocumentBuilder::Close() {
  if (!error_.ok()) return error_;
  if (stack_.empty()) {
    return error_ = Status::InvalidArgument("Close with no open element");
  }
  NodeId id = stack_.back();
  doc_.nodes_[id].end = counter_++;
  stack_.pop_back();
  last_child_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return Status::OK();
}

Result<Document> DocumentBuilder::Finish() && {
  if (!error_.ok()) return error_;
  if (!stack_.empty()) {
    return Status::InvalidArgument("Finish with unclosed elements");
  }
  if (!root_done_) {
    return Status::InvalidArgument("document has no root element");
  }
  return std::move(doc_);
}

}  // namespace flexpath
