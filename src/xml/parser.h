#ifndef FLEXPATH_XML_PARSER_H_
#define FLEXPATH_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/document.h"

namespace flexpath {

/// Parses `input` (a complete XML document) into a Document, interning tag
/// names into `dict`. Supported: elements, attributes (both quote styles),
/// character data, the five predefined entities plus decimal/hex character
/// references, comments, CDATA sections, processing instructions and an
/// (ignored) DOCTYPE. Namespaces are not expanded — prefixed names are kept
/// verbatim, which is sufficient for the corpora this library targets.
/// Errors carry 1-based line/column positions.
Result<Document> ParseXml(std::string_view input, TagDict* dict);

}  // namespace flexpath

#endif  // FLEXPATH_XML_PARSER_H_
