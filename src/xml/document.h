#ifndef FLEXPATH_XML_DOCUMENT_H_
#define FLEXPATH_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Index of an element within its Document (pre-order position).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// One attribute on an element.
struct Attribute {
  TagId name = kInvalidTag;
  std::string value;
};

/// One element node. Elements carry Dietz interval numbers
/// (start, end, level): `a` is an ancestor of `d` iff
/// a.start < d.start && d.end < a.end; `a` is the parent of `d` iff
/// additionally d.level == a.level + 1. Input lists sorted by node id are
/// automatically sorted by `start`, which the structural join requires.
struct Element {
  TagId tag = kInvalidTag;
  NodeId parent = kInvalidNode;
  NodeId first_child = kInvalidNode;
  NodeId next_sibling = kInvalidNode;
  uint32_t start = 0;   ///< Interval open number.
  uint32_t end = 0;     ///< Interval close number (> start).
  uint32_t level = 0;   ///< Root is level 0.
  std::string text;     ///< Immediate text content (children excluded).
  std::vector<Attribute> attrs;
};

/// An in-memory XML document: a vector of elements in document (pre-)order,
/// so NodeId doubles as document order. Build with DocumentBuilder or the
/// Parser; immutable afterwards.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Number of element nodes.
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const Element& node(NodeId id) const { return nodes_[id]; }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  /// True iff `a` is a proper ancestor of `d`.
  bool IsAncestor(NodeId a, NodeId d) const {
    const Element& ea = nodes_[a];
    const Element& ed = nodes_[d];
    return ea.start < ed.start && ed.end < ea.end;
  }

  /// True iff `a` is the parent of `d`.
  bool IsParent(NodeId a, NodeId d) const { return nodes_[d].parent == a; }

  /// Concatenated text of the subtree rooted at `id`, in document order,
  /// with single spaces between fragments. O(subtree).
  std::string SubtreeText(NodeId id) const;

  /// Returns the children of `id` in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// Returns the value of attribute `name` on `id`, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, TagId name) const;

  /// Wraps an already-valid node vector (pre-order, interval-numbered)
  /// as a Document — used by deserializers (binary_codec, storage) that
  /// reproduce nodes exactly as a builder once emitted them. Performs no
  /// validation.
  static Document Assemble(std::vector<Element> nodes) {
    Document doc;
    doc.nodes_ = std::move(nodes);
    return doc;
  }

 private:
  friend class DocumentBuilder;
  std::vector<Element> nodes_;
};

/// Incrementally builds a Document. Usage:
///   DocumentBuilder b(dict);
///   b.Open("site"); b.Open("item"); b.Text("hi"); b.Close(); b.Close();
///   Result<Document> doc = std::move(b).Finish();
/// Open/Close must nest properly; Finish validates that exactly one root
/// element was produced and everything was closed.
class DocumentBuilder {
 public:
  /// `dict` must outlive the builder; tags are interned into it.
  explicit DocumentBuilder(TagDict* dict) : dict_(dict) {}

  DocumentBuilder(const DocumentBuilder&) = delete;
  DocumentBuilder& operator=(const DocumentBuilder&) = delete;

  /// Opens an element with the given tag name; returns its NodeId.
  NodeId Open(std::string_view tag);

  /// Adds an attribute to the most recently opened (still open) element.
  /// Must be called before any child or text is added to it.
  Status Attr(std::string_view name, std::string_view value);

  /// Appends text content to the innermost open element.
  Status Text(std::string_view text);

  /// Closes the innermost open element.
  Status Close();

  /// Depth of currently open elements (0 at start and after the root
  /// closes).
  size_t depth() const { return stack_.size(); }

  /// Validates and returns the document. The builder is consumed.
  Result<Document> Finish() &&;

 private:
  TagDict* dict_;
  Document doc_;
  std::vector<NodeId> stack_;      ///< Open elements, innermost last.
  std::vector<NodeId> last_child_; ///< Last completed child per open level.
  uint32_t counter_ = 0;           ///< Dietz interval counter.
  bool root_done_ = false;
  Status error_;
};

}  // namespace flexpath

#endif  // FLEXPATH_XML_DOCUMENT_H_
