#ifndef FLEXPATH_XML_SERIALIZER_H_
#define FLEXPATH_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Serialization options.
struct SerializeOptions {
  bool pretty = false;   ///< Indent children; adds newlines.
  int indent_width = 2;  ///< Spaces per level when pretty.
};

/// Renders `doc` back to XML text. Text content is escaped; attribute
/// values are double-quoted. parse(serialize(doc)) reproduces the same
/// tree shape, tags, attributes and (whitespace-normalized) text.
std::string SerializeXml(const Document& doc, const TagDict& dict,
                         const SerializeOptions& opts = {});

}  // namespace flexpath

#endif  // FLEXPATH_XML_SERIALIZER_H_
