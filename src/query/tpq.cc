#include "query/tpq.h"

#include <algorithm>
#include <cassert>

namespace flexpath {

VarId Tpq::AddRoot(TagId tag) {
  VarId var = next_var_++;
  AddRootVar(var, tag);
  return var;
}

VarId Tpq::AddChild(VarId parent_var, Axis axis, TagId tag) {
  VarId var = next_var_++;
  AddChildVar(var, parent_var, axis, tag);
  return var;
}

void Tpq::AddRootVar(VarId var, TagId tag) {
  assert(nodes_.empty());
  assert(var != kInvalidVar);
  TpqNode n;
  n.var = var;
  n.tag = tag;
  nodes_.push_back(std::move(n));
  parent_.push_back(-1);
  axis_.push_back(Axis::kChild);
  distinguished_ = var;
  next_var_ = std::max(next_var_, var + 1);
}

void Tpq::AddChildVar(VarId var, VarId parent_var, Axis axis, TagId tag) {
  int pidx = IndexOf(parent_var);
  assert(pidx >= 0 && "parent variable does not exist");
  assert(IndexOf(var) < 0 && "variable id already in use");
  TpqNode n;
  n.var = var;
  n.tag = tag;
  nodes_.push_back(std::move(n));
  parent_.push_back(pidx);
  axis_.push_back(axis);
  next_var_ = std::max(next_var_, var + 1);
}

void Tpq::AddContains(VarId var, FtExpr expr) {
  mutable_node(var).contains.push_back(std::move(expr));
}

void Tpq::AddAttrPred(VarId var, AttrPred pred) {
  mutable_node(var).attr_preds.push_back(std::move(pred));
}

std::vector<VarId> Tpq::Vars() const {
  std::vector<VarId> out;
  out.reserve(nodes_.size());
  for (const TpqNode& n : nodes_) out.push_back(n.var);
  return out;
}

int Tpq::IndexOf(VarId var) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].var == var) return static_cast<int>(i);
  }
  return -1;
}

const TpqNode& Tpq::node(VarId var) const {
  int idx = IndexOf(var);
  assert(idx >= 0);
  return nodes_[static_cast<size_t>(idx)];
}

TpqNode& Tpq::mutable_node(VarId var) {
  int idx = IndexOf(var);
  assert(idx >= 0);
  return nodes_[static_cast<size_t>(idx)];
}

VarId Tpq::Parent(VarId var) const {
  int idx = IndexOf(var);
  assert(idx >= 0);
  int pidx = parent_[static_cast<size_t>(idx)];
  return pidx < 0 ? kInvalidVar : nodes_[static_cast<size_t>(pidx)].var;
}

Axis Tpq::AxisOf(VarId var) const {
  int idx = IndexOf(var);
  assert(idx >= 0);
  return axis_[static_cast<size_t>(idx)];
}

void Tpq::SetAxis(VarId var, Axis axis) {
  int idx = IndexOf(var);
  assert(idx >= 0);
  axis_[static_cast<size_t>(idx)] = axis;
}

std::vector<VarId> Tpq::Children(VarId var) const {
  std::vector<VarId> out;
  int idx = IndexOf(var);
  if (idx < 0) return out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (parent_[i] == idx) out.push_back(nodes_[i].var);
  }
  return out;
}

bool Tpq::IsAncestorVar(VarId anc, VarId var) const {
  for (VarId p = Parent(var); p != kInvalidVar; p = Parent(p)) {
    if (p == anc) return true;
  }
  return false;
}

Status Tpq::DeleteLeaf(VarId var) {
  int idx = IndexOf(var);
  if (idx < 0) return Status::NotFound("no such variable");
  if (parent_[static_cast<size_t>(idx)] < 0) {
    return Status::InvalidArgument("cannot delete the root");
  }
  if (!IsLeaf(var)) return Status::InvalidArgument("node is not a leaf");
  if (distinguished_ == var) distinguished_ = Parent(var);
  // contains predicates survive the deletion at the parent: the closure
  // derives contains(parent, E) from contains(var, E), and the paper's
  // loosest interpretation explicitly keeps the full-text expression
  // (Section 1's Q6). Deleting a keyword requirement outright would
  // admit answers "not relevant to the query" (Section 3.1).
  if (!nodes_[static_cast<size_t>(idx)].contains.empty()) {
    TpqNode& parent_node =
        nodes_[static_cast<size_t>(parent_[static_cast<size_t>(idx)])];
    for (FtExpr& e : nodes_[static_cast<size_t>(idx)].contains) {
      parent_node.contains.push_back(std::move(e));
    }
  }
  // Remove the entry and fix parent indexes > idx.
  nodes_.erase(nodes_.begin() + idx);
  parent_.erase(parent_.begin() + idx);
  axis_.erase(axis_.begin() + idx);
  for (int& p : parent_) {
    if (p > idx) --p;
  }
  return Status::OK();
}

Status Tpq::Reparent(VarId var, VarId new_parent) {
  int idx = IndexOf(var);
  int pidx = IndexOf(new_parent);
  if (idx < 0 || pidx < 0) return Status::NotFound("no such variable");
  if (parent_[static_cast<size_t>(idx)] < 0) {
    return Status::InvalidArgument("cannot reparent the root");
  }
  if (var == new_parent || IsAncestorVar(var, new_parent)) {
    return Status::InvalidArgument("new parent lies inside the subtree");
  }
  parent_[static_cast<size_t>(idx)] = pidx;
  axis_[static_cast<size_t>(idx)] = Axis::kDescendant;
  return Status::OK();
}

Status Tpq::PromoteContains(VarId var) {
  int idx = IndexOf(var);
  if (idx < 0) return Status::NotFound("no such variable");
  if (parent_[static_cast<size_t>(idx)] < 0) {
    return Status::InvalidArgument("cannot promote contains from the root");
  }
  TpqNode& n = nodes_[static_cast<size_t>(idx)];
  if (n.contains.empty()) {
    return Status::InvalidArgument("node has no contains predicate");
  }
  TpqNode& p = nodes_[static_cast<size_t>(parent_[static_cast<size_t>(idx)])];
  for (FtExpr& e : n.contains) p.contains.push_back(std::move(e));
  n.contains.clear();
  return Status::OK();
}

Status Tpq::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty query");
  if (parent_[0] != -1) return Status::Internal("first node must be root");
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (parent_[i] < 0) return Status::Internal("multiple roots");
    // Walk to the root, guarding against cycles.
    size_t steps = 0;
    for (int p = parent_[i]; p >= 0; p = parent_[static_cast<size_t>(p)]) {
      if (++steps > nodes_.size()) return Status::Internal("parent cycle");
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      if (nodes_[i].var == nodes_[j].var) {
        return Status::Internal("duplicate variable id");
      }
    }
  }
  if (IndexOf(distinguished_) < 0) {
    return Status::Internal("distinguished variable missing");
  }
  return Status::OK();
}

namespace {

std::string AxisPrefix(Axis a) {
  return a == Axis::kChild ? "/" : "//";
}

}  // namespace

std::string Tpq::ToString(const TagDict& dict) const {
  if (nodes_.empty()) return "(empty)";
  // Render as root with bracketed branches; mark the distinguished node
  // with a trailing '!'.
  struct Renderer {
    const Tpq& q;
    const TagDict& dict;
    std::string Render(VarId var, Axis axis, bool is_root) const {
      const TpqNode& n = q.node(var);
      std::string out = is_root ? "//" : AxisPrefix(axis);
      out += n.tag == kInvalidTag ? "*" : dict.Name(n.tag);
      if (var == q.distinguished()) out += "!";
      std::vector<std::string> preds;
      // Sequential appends rather than one chained concatenation: GCC
      // 12's -Wrestrict misfires on the chained operator+ form here.
      for (const FtExpr& e : n.contains) {
        std::string p = ".contains(";
        p += e.ToString();
        p += ")";
        preds.push_back(std::move(p));
      }
      for (const AttrPred& a : n.attr_preds) {
        preds.push_back(a.ToString(&dict));
      }
      for (VarId c : q.Children(var)) {
        std::string p = ".";
        p += Render(c, q.AxisOf(c), false);
        preds.push_back(std::move(p));
      }
      if (!preds.empty()) {
        out += "[";
        for (size_t i = 0; i < preds.size(); ++i) {
          if (i > 0) out += " and ";
          out += preds[i];
        }
        out += "]";
      }
      return out;
    }
  };
  return Renderer{*this, dict}.Render(root(), Axis::kDescendant, true);
}

std::string Tpq::CanonicalSubtree(size_t idx) const {
  const TpqNode& n = nodes_[idx];
  std::string out = "(";
  out += idx == 0 ? "r" : (axis_[idx] == Axis::kChild ? "c" : "d");
  out += ":";
  out += std::to_string(n.tag);
  if (n.var == distinguished_) out += "!";
  std::vector<std::string> preds;
  // Sequential appends: GCC 12's -Wrestrict misfires on "C" + ToString().
  for (const FtExpr& e : n.contains) {
    std::string p = "C";
    p += e.ToString();
    preds.push_back(std::move(p));
  }
  for (const AttrPred& a : n.attr_preds) {
    std::string p = "A";
    p += a.ToString();
    preds.push_back(std::move(p));
  }
  std::vector<std::string> kids;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (parent_[i] == static_cast<int>(idx)) {
      kids.push_back(CanonicalSubtree(i));
    }
  }
  std::sort(preds.begin(), preds.end());
  std::sort(kids.begin(), kids.end());
  for (const std::string& p : preds) out += p;
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

std::string Tpq::CanonicalString() const {
  if (nodes_.empty()) return "()";
  return CanonicalSubtree(0);
}

size_t Tpq::ContainsCount() const {
  size_t n = 0;
  for (const TpqNode& node : nodes_) n += node.contains.size();
  return n;
}

}  // namespace flexpath
