#ifndef FLEXPATH_QUERY_CONTAINMENT_H_
#define FLEXPATH_QUERY_CONTAINMENT_H_

#include "query/logical.h"
#include "query/tpq.h"

namespace flexpath {

/// Decides Q ⊆ Q' (every answer of Q on every database is an answer of
/// Q') for tree pattern queries via a homomorphism check: Q ⊆ Q' iff
/// there is a mapping h from Q''s variables to Q's variables with
/// h(dist') = dist that maps each predicate of Q' into the closure of Q.
/// For the wildcard-free fragment used here, homomorphism is sound and
/// complete (Miklau & Suciu [24] place the hardness at wildcards +
/// branching + //; our relaxation tests stay in the tractable case).
/// Exponential in |Q'| in the worst case; queries are tiny.
bool ContainedIn(const Tpq& q, const Tpq& q_prime);

/// Same, over logical forms (q, q_prime need not be cores).
bool ContainedIn(const LogicalQuery& q, const LogicalQuery& q_prime);

}  // namespace flexpath

#endif  // FLEXPATH_QUERY_CONTAINMENT_H_
