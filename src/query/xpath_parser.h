#ifndef FLEXPATH_QUERY_XPATH_PARSER_H_
#define FLEXPATH_QUERY_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "ir/tokenizer.h"
#include "query/tpq.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Parses the tree-pattern fragment of XPath used throughout the paper
/// into a Tpq. Supported:
///   - absolute paths with / (parent-child) and // (ancestor-descendant)
///     steps: //article/section, //item//parlist
///   - predicates [..] containing relative paths (./a/b, .//c), possibly
///     nested, combined with `and`
///   - full-text: .contains("XML" and "streaming") or
///     contains(., "XML" and "streaming") — FTExp syntax per ParseFtExpr
///   - attribute comparisons: [@id='item1'], [@quantity >= 2]
/// The distinguished (answer) node is the last step of the main path.
/// Tag names are interned into `dict`; keywords are normalized with
/// `opts`. Disjunction between structural predicates is rejected (tree
/// patterns are conjunctive); use `or` inside contains(...) instead.
Result<Tpq> ParseXPath(std::string_view input, TagDict* dict,
                       const TokenizerOptions& opts = {});

}  // namespace flexpath

#endif  // FLEXPATH_QUERY_XPATH_PARSER_H_
