#ifndef FLEXPATH_QUERY_LOGICAL_H_
#define FLEXPATH_QUERY_LOGICAL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "query/tpq.h"

namespace flexpath {

/// The logical form of a TPQ (Figure 2): a set of predicates plus the
/// distinguished variable. Predicates are kept sorted and unique, so two
/// logical queries are equal iff their predicate sets are equal.
/// `exprs` maps each contains key back to its FtExpr so trees can be
/// reconstructed; `attr_preds` carries the never-relaxed value predicates
/// through closure/core untouched.
struct LogicalQuery {
  std::set<Predicate> preds;
  VarId distinguished = kInvalidVar;
  std::map<std::string, FtExpr> exprs;
  std::map<VarId, std::vector<AttrPred>> attr_preds;

  bool Has(const Predicate& p) const { return preds.count(p) > 0; }

  /// Predicate-set equality (ignores the expr registry, which is derived).
  friend bool operator==(const LogicalQuery& a, const LogicalQuery& b) {
    return a.preds == b.preds && a.distinguished == b.distinguished;
  }

  std::string ToString(const TagDict* dict = nullptr) const;
};

/// Converts a TPQ to its logical form (the conjunction of its structural,
/// tag and contains predicates — Figure 2).
LogicalQuery ToLogical(const Tpq& q);

/// Computes the closure (Section 3.2): conjoins every predicate derivable
/// by the inference rules of Figure 3 —
///   pc(x,y)            |- ad(x,y)
///   ad(x,y), ad(y,z)   |- ad(x,z)
///   ad(x,y), contains(y,E) |- contains(x,E)
/// Idempotent; Closure(Closure(q)) == Closure(q).
LogicalQuery Closure(const LogicalQuery& q);

/// True iff `p` is derivable from `base` by the inference rules (p not
/// counted as its own derivation).
bool Derivable(const std::set<Predicate>& base, const Predicate& p);

/// Computes the core (Section 3.2): the unique minimal query equivalent
/// to `q` — removes every predicate derivable from the remaining ones.
/// Theorem 1 guarantees the result is independent of removal order.
LogicalQuery Core(const LogicalQuery& q);

/// True iff the two logical queries are equivalent (equal closures).
bool Equivalent(const LogicalQuery& a, const LogicalQuery& b);

/// Reconstructs a TPQ from a logical query (typically a core). Fails if
/// the structural predicates do not form a tree (each non-root variable
/// needs exactly one incoming pc/ad edge after minimization), if a
/// variable carries two different tag constraints, or if the
/// distinguished variable is absent.
Result<Tpq> LogicalToTpq(const LogicalQuery& q);

/// Checks whether a candidate drop set is a valid relaxation per the
/// paper's Definitions 1-2 (with the implicit restrictions Section 3.1
/// spells out): `dropped` yields a valid relaxation iff
///  (i)   the remainder is not equivalent to the closure,
///  (ii)  its core is a tree pattern query,
///  (iii) explicitly dropped predicates are structural or contains —
///        tag predicates only disappear with their variable,
///  (iv)  a dropped contains(x, E) is a *promotion*: either x dies, or a
///        contains(·, E) survives on an ancestor of x (the paper never
///        drops the full-text requirement outright),
///  (v)   the query root `root` and the distinguished variable survive
///        (dropping the root "admits non-articles as answers ... we do
///        not consider them further", Section 3.1),
///  (vi)  contains bookkeeping stays derivation-consistent: for each
///        full-text expression, the remainder has at most one *minimal*
///        carrier per original contains predicate, sitting on (an
///        ancestor of) the original position. Structural drops may not
///        detach a carrier while leaving its derived copy behind as an
///        independent requirement — Theorem 2's completeness needs
///        derived predicates to travel with their derivations.
/// Used by tests to validate the operator algebra (Theorem 2); the
/// runtime path never needs containment checks.
bool IsValidRelaxationDrop(const Tpq& q, const std::set<Predicate>& dropped);

}  // namespace flexpath

#endif  // FLEXPATH_QUERY_LOGICAL_H_
