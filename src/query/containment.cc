#include "query/containment.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace flexpath {

namespace {

/// Backtracking search for a homomorphism h: vars(Q') -> vars(Q) mapping
/// every predicate of Q' into Closure(Q).
class HomomorphismSearch {
 public:
  HomomorphismSearch(const LogicalQuery& target_closure,
                     const LogicalQuery& source)
      : target_(target_closure), source_(source) {
    std::set<VarId> vars;
    for (const Predicate& p : source_.preds) {
      vars.insert(p.x);
      if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
        vars.insert(p.y);
      }
    }
    vars.insert(source_.distinguished);
    source_vars_.assign(vars.begin(), vars.end());

    std::set<VarId> tvars;
    for (const Predicate& p : target_.preds) {
      tvars.insert(p.x);
      if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
        tvars.insert(p.y);
      }
    }
    tvars.insert(target_.distinguished);
    target_vars_.assign(tvars.begin(), tvars.end());
  }

  bool Run() {
    mapping_[source_.distinguished] = target_.distinguished;
    if (!ConsistentFor(source_.distinguished)) return false;
    return Extend(0);
  }

 private:
  bool Extend(size_t idx) {
    if (idx == source_vars_.size()) return CheckAll();
    const VarId sv = source_vars_[idx];
    if (mapping_.count(sv) > 0) {
      return ConsistentFor(sv) && Extend(idx + 1);
    }
    for (VarId tv : target_vars_) {
      mapping_[sv] = tv;
      if (ConsistentFor(sv) && Extend(idx + 1)) return true;
      mapping_.erase(sv);
    }
    return false;
  }

  /// Checks every source predicate whose variables are all mapped and
  /// which involves `sv`.
  bool ConsistentFor(VarId sv) {
    for (const Predicate& p : source_.preds) {
      const bool binary =
          p.kind == PredKind::kPc || p.kind == PredKind::kAd;
      if (p.x != sv && !(binary && p.y == sv)) continue;
      if (!CheckMapped(p)) return false;
    }
    return true;
  }

  bool CheckAll() {
    for (const Predicate& p : source_.preds) {
      if (!CheckMapped(p)) return false;
    }
    return true;
  }

  /// True if `p`'s image under the (possibly partial) mapping is present
  /// in the target closure; unmapped variables defer the check.
  bool CheckMapped(const Predicate& p) {
    auto x = mapping_.find(p.x);
    if (x == mapping_.end()) return true;
    switch (p.kind) {
      case PredKind::kPc:
      case PredKind::kAd: {
        auto y = mapping_.find(p.y);
        if (y == mapping_.end()) return true;
        Predicate image = p.kind == PredKind::kPc
                              ? Predicate::Pc(x->second, y->second)
                              : Predicate::Ad(x->second, y->second);
        return target_.Has(image);
      }
      case PredKind::kTag:
        return target_.Has(Predicate::Tag(x->second, p.tag));
      case PredKind::kContains:
        return target_.Has(Predicate::ContainsKey(x->second, p.expr_key));
    }
    return false;
  }

  const LogicalQuery& target_;
  const LogicalQuery& source_;
  std::vector<VarId> source_vars_;
  std::vector<VarId> target_vars_;
  std::map<VarId, VarId> mapping_;
};

}  // namespace

bool ContainedIn(const LogicalQuery& q, const LogicalQuery& q_prime) {
  LogicalQuery closure = Closure(q);
  return HomomorphismSearch(closure, q_prime).Run();
}

bool ContainedIn(const Tpq& q, const Tpq& q_prime) {
  return ContainedIn(ToLogical(q), ToLogical(q_prime));
}

}  // namespace flexpath
