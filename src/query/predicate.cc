#include "query/predicate.h"

#include <cstdlib>

namespace flexpath {

namespace {

// Sequential appends rather than one chained concatenation throughout
// this file: GCC 12's -Wrestrict misfires on the chained operator+ form.
std::string VarName(VarId v) {
  std::string out = "$";
  out += std::to_string(v);
  return out;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string Predicate::ToString(const TagDict* dict) const {
  std::string out;
  switch (kind) {
    case PredKind::kPc:
    case PredKind::kAd:
      out = kind == PredKind::kPc ? "pc(" : "ad(";
      out += VarName(x);
      out += ",";
      out += VarName(y);
      out += ")";
      return out;
    case PredKind::kTag:
      out = VarName(x);
      out += ".tag=";
      if (dict != nullptr && tag != kInvalidTag) {
        out += dict->Name(tag);
      } else {
        out += "#";
        out += std::to_string(tag);
      }
      return out;
    case PredKind::kContains:
      out = "contains(";
      out += VarName(x);
      out += ",";
      out += expr_key;
      out += ")";
      return out;
  }
  return out;
}

bool AttrPred::Matches(const std::string& data_value) const {
  double a = 0;
  double b = 0;
  int cmp;
  if (ParseNumber(data_value, &a) && ParseNumber(value, &b)) {
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = data_value.compare(value);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string AttrPred::ToString(const TagDict* dict) const {
  static constexpr const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  std::string out = "@";
  if (dict != nullptr && attr != kInvalidTag) {
    out += dict->Name(attr);
  } else {
    out += "#";
    out += std::to_string(attr);
  }
  out += kOps[static_cast<int>(op)];
  out += "'";
  out += value;
  out += "'";
  return out;
}

}  // namespace flexpath
