#include "query/predicate.h"

#include <cstdlib>

namespace flexpath {

namespace {

std::string VarName(VarId v) { return "$" + std::to_string(v); }

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string Predicate::ToString(const TagDict* dict) const {
  switch (kind) {
    case PredKind::kPc:
      return "pc(" + VarName(x) + "," + VarName(y) + ")";
    case PredKind::kAd:
      return "ad(" + VarName(x) + "," + VarName(y) + ")";
    case PredKind::kTag: {
      std::string name = dict != nullptr && tag != kInvalidTag
                             ? dict->Name(tag)
                             : "#" + std::to_string(tag);
      return VarName(x) + ".tag=" + name;
    }
    case PredKind::kContains:
      return "contains(" + VarName(x) + "," + expr_key + ")";
  }
  return "";
}

bool AttrPred::Matches(const std::string& data_value) const {
  double a = 0;
  double b = 0;
  int cmp;
  if (ParseNumber(data_value, &a) && ParseNumber(value, &b)) {
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    cmp = data_value.compare(value);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string AttrPred::ToString(const TagDict* dict) const {
  static constexpr const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  std::string name = dict != nullptr && attr != kInvalidTag
                         ? dict->Name(attr)
                         : "#" + std::to_string(attr);
  return "@" + name + kOps[static_cast<int>(op)] + "'" + value + "'";
}

}  // namespace flexpath
