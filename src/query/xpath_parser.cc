#include "query/xpath_parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"
#include "ir/ft_expr.h"

namespace flexpath {

namespace {

/// Recursive-descent parser for the tree-pattern XPath fragment.
class XPathParser {
 public:
  XPathParser(std::string_view in, TagDict* dict,
              const TokenizerOptions& opts)
      : in_(in), dict_(dict), opts_(opts) {}

  Result<Tpq> Parse() {
    SkipWs();
    Axis axis;
    if (!ConsumeAxis(&axis)) {
      return Err("query must start with '/' or '//'");
    }
    // The leading axis of an absolute path is relative to the document
    // root; we model both / and // as a descendant spine from a virtual
    // root, matching the paper's //article[...] style. A leading single
    // '/' constrains the first step to be the document root element,
    // which for single-rooted corpora is the same as '//' when the tag
    // matches the root; we accept both and treat the first step
    // identically.
    VarId last = kInvalidVar;
    FLEXPATH_RETURN_IF_ERROR(ParseStep(&last, kInvalidVar, axis));
    while (ConsumeAxis(&axis)) {
      FLEXPATH_RETURN_IF_ERROR(ParseStep(&last, last, axis));
    }
    SkipWs();
    if (pos_ != in_.size()) {
      return Err("unexpected trailing input at '" +
                 std::string(in_.substr(pos_)) + "'");
    }
    query_.SetDistinguished(last);
    FLEXPATH_RETURN_IF_ERROR(query_.Validate());
    return std::move(query_);
  }

 private:
  void SkipWs() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }

  Status Err(std::string msg) const {
    return Status::ParseError("XPath, position " + std::to_string(pos_) +
                              ": " + std::move(msg));
  }

  /// Consumes '/' or '//' and reports which. False if neither.
  bool ConsumeAxis(Axis* axis) {
    SkipWs();
    if (AtEnd() || Peek() != '/') return false;
    ++pos_;
    if (!AtEnd() && Peek() == '/') {
      ++pos_;
      *axis = Axis::kDescendant;
    } else {
      *axis = Axis::kChild;
    }
    return true;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Status ParseName(std::string* out) {
    SkipWs();
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      *out = "*";
      return Status::OK();
    }
    size_t begin = pos_;
    // A name must not start with '.' (that's the self step).
    while (pos_ < in_.size() && IsNameChar(in_[pos_])) {
      if (in_[pos_] == '.' && pos_ == begin) break;
      ++pos_;
    }
    if (pos_ == begin) return Err("expected an element name");
    *out = std::string(in_.substr(begin, pos_ - begin));
    return Status::OK();
  }

  /// Parses one step (name + optional predicate blocks), creating a node
  /// under `parent` (or the root). Returns the node's var in *out.
  Status ParseStep(VarId* out, VarId parent, Axis axis) {
    std::string name;
    FLEXPATH_RETURN_IF_ERROR(ParseName(&name));
    TagId tag = name == "*" ? kInvalidTag : dict_->Intern(name);
    VarId var = parent == kInvalidVar
                    ? query_.AddRoot(tag)
                    : query_.AddChild(parent, axis, tag);
    SkipWs();
    while (!AtEnd() && Peek() == '[') {
      ++pos_;
      FLEXPATH_RETURN_IF_ERROR(ParsePredExpr(var));
      SkipWs();
      if (AtEnd() || Peek() != ']') return Err("expected ']'");
      ++pos_;
      SkipWs();
    }
    *out = var;
    return Status::OK();
  }

  /// expr := term ('and' term)*. 'or' between structural terms is not a
  /// tree pattern and is rejected with a pointer to FTExp disjunction.
  Status ParsePredExpr(VarId context) {
    FLEXPATH_RETURN_IF_ERROR(ParsePredTerm(context));
    for (;;) {
      SkipWs();
      if (ConsumeKeyword("and")) {
        FLEXPATH_RETURN_IF_ERROR(ParsePredTerm(context));
        continue;
      }
      if (ConsumeKeyword("or")) {
        return Err(
            "disjunction between structural predicates is not supported by "
            "tree patterns; use `or` inside contains(...)");
      }
      return Status::OK();
    }
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipWs();
    if (in_.size() - pos_ < kw.size()) return false;
    if (in_.substr(pos_, kw.size()) != kw) return false;
    size_t after = pos_ + kw.size();
    if (after < in_.size() &&
        (std::isalnum(static_cast<unsigned char>(in_[after])) ||
         in_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Status ParsePredTerm(VarId context) {
    SkipWs();
    if (AtEnd()) return Err("expected a predicate");
    if (Peek() == '(') {
      ++pos_;
      FLEXPATH_RETURN_IF_ERROR(ParsePredExpr(context));
      SkipWs();
      if (AtEnd() || Peek() != ')') return Err("expected ')'");
      ++pos_;
      return Status::OK();
    }
    if (Peek() == '@') return ParseAttrPred(context);
    if (Peek() == '.') {
      // `.contains(...)`, `./path`, or `.//path`.
      if (StartsWith(in_.substr(pos_), ".contains")) {
        pos_ += 9;
        return ParseContainsArgs(context);
      }
      ++pos_;  // consume '.'
      Axis axis;
      if (!ConsumeAxis(&axis)) {
        return Err("expected '/' or '//' after '.'");
      }
      return ParseRelativePath(context, axis);
    }
    if (StartsWith(in_.substr(pos_), "contains")) {
      // contains(., FTExp)
      pos_ += 8;
      SkipWs();
      if (AtEnd() || Peek() != '(') return Err("expected '(' after contains");
      ++pos_;
      SkipWs();
      if (AtEnd() || Peek() != '.') {
        return Err("expected '.' as the first argument of contains()");
      }
      ++pos_;
      SkipWs();
      if (AtEnd() || Peek() != ',') return Err("expected ',' in contains()");
      ++pos_;
      return ParseContainsBody(context);
    }
    // Bare relative path (e.g. `section/paragraph` inside a predicate).
    Axis axis = Axis::kChild;
    return ParseRelativePath(context, axis);
  }

  /// After `.contains` — expects '( FTExp )'.
  Status ParseContainsArgs(VarId context) {
    SkipWs();
    if (AtEnd() || Peek() != '(') return Err("expected '(' after .contains");
    ++pos_;
    return ParseContainsBody(context);
  }

  /// Parses the FTExp up to the matching ')' and attaches it to $context.
  Status ParseContainsBody(VarId context) {
    // Scan to the matching close paren, honoring nested parens and
    // quoted strings.
    size_t begin = pos_;
    int depth = 1;
    while (pos_ < in_.size() && depth > 0) {
      char c = in_[pos_];
      if (c == '"' || c == '\'') {
        char quote = c;
        ++pos_;
        while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
        if (pos_ >= in_.size()) return Err("unterminated string in contains");
        ++pos_;
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth > 0) ++pos_;
    }
    if (depth != 0) return Err("unterminated contains(...)");
    std::string_view body = in_.substr(begin, pos_ - begin);
    ++pos_;  // consume ')'
    Result<FtExpr> expr = ParseFtExpr(body, opts_);
    if (!expr.ok()) return expr.status();
    query_.AddContains(context, std::move(expr).value());
    return Status::OK();
  }

  Status ParseRelativePath(VarId context, Axis first_axis) {
    VarId last = kInvalidVar;
    FLEXPATH_RETURN_IF_ERROR(ParseStep(&last, context, first_axis));
    Axis axis;
    while (true) {
      // `.contains` directly chained on a path step applies to that step.
      SkipWs();
      if (StartsWith(in_.substr(pos_), ".contains")) {
        pos_ += 9;
        FLEXPATH_RETURN_IF_ERROR(ParseContainsArgs(last));
        continue;
      }
      if (!ConsumeAxis(&axis)) break;
      FLEXPATH_RETURN_IF_ERROR(ParseStep(&last, last, axis));
    }
    return Status::OK();
  }

  Status ParseAttrPred(VarId context) {
    ++pos_;  // consume '@'
    std::string name;
    FLEXPATH_RETURN_IF_ERROR(ParseName(&name));
    SkipWs();
    AttrPred pred;
    pred.attr = dict_->Intern(name);
    auto consume_op = [&](std::string_view op) {
      SkipWs();
      if (in_.size() - pos_ >= op.size() &&
          in_.substr(pos_, op.size()) == op) {
        pos_ += op.size();
        return true;
      }
      return false;
    };
    if (consume_op("!=")) {
      pred.op = AttrPred::Op::kNe;
    } else if (consume_op(">=")) {
      pred.op = AttrPred::Op::kGe;
    } else if (consume_op("<=")) {
      pred.op = AttrPred::Op::kLe;
    } else if (consume_op("=")) {
      pred.op = AttrPred::Op::kEq;
    } else if (consume_op(">")) {
      pred.op = AttrPred::Op::kGt;
    } else if (consume_op("<")) {
      pred.op = AttrPred::Op::kLt;
    } else {
      return Err("expected a comparison operator after @" + name);
    }
    SkipWs();
    if (AtEnd()) return Err("expected a value after the operator");
    if (Peek() == '"' || Peek() == '\'') {
      char quote = Peek();
      ++pos_;
      size_t begin = pos_;
      while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
      if (pos_ >= in_.size()) return Err("unterminated attribute value");
      pred.value = std::string(in_.substr(begin, pos_ - begin));
      ++pos_;
    } else {
      size_t begin = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '.' || in_[pos_] == '-' || in_[pos_] == '+')) {
        ++pos_;
      }
      if (pos_ == begin) return Err("expected a value after the operator");
      pred.value = std::string(in_.substr(begin, pos_ - begin));
    }
    query_.AddAttrPred(context, std::move(pred));
    return Status::OK();
  }

  std::string_view in_;
  TagDict* dict_;
  TokenizerOptions opts_;
  Tpq query_;
  size_t pos_ = 0;
};

}  // namespace

Result<Tpq> ParseXPath(std::string_view input, TagDict* dict,
                       const TokenizerOptions& opts) {
  return XPathParser(input, dict, opts).Parse();
}

}  // namespace flexpath
