#include "query/logical.h"

#include <algorithm>
#include <map>

namespace flexpath {

std::string LogicalQuery::ToString(const TagDict* dict) const {
  std::string out;
  for (const Predicate& p : preds) {
    if (!out.empty()) out += " ^ ";
    out += p.ToString(dict);
  }
  out += " [dist=$" + std::to_string(distinguished) + "]";
  return out;
}

LogicalQuery ToLogical(const Tpq& q) {
  LogicalQuery out;
  out.distinguished = q.distinguished();
  for (VarId v : q.Vars()) {
    const TpqNode& n = q.node(v);
    if (n.tag != kInvalidTag) out.preds.insert(Predicate::Tag(v, n.tag));
    for (const FtExpr& e : n.contains) {
      out.preds.insert(Predicate::Contains(v, e));
      out.exprs.emplace(e.ToString(), e);
    }
    if (!n.attr_preds.empty()) out.attr_preds[v] = n.attr_preds;
    const VarId p = q.Parent(v);
    if (p != kInvalidVar) {
      out.preds.insert(q.AxisOf(v) == Axis::kChild ? Predicate::Pc(p, v)
                                                   : Predicate::Ad(p, v));
    }
  }
  return out;
}

namespace {

/// One round of the Figure 3 inference rules over `preds`; returns true if
/// anything new was added.
bool InferenceRound(std::set<Predicate>* preds) {
  std::vector<Predicate> added;
  // pc(x,y) |- ad(x,y)
  for (const Predicate& p : *preds) {
    if (p.kind == PredKind::kPc) {
      Predicate ad = Predicate::Ad(p.x, p.y);
      if (preds->count(ad) == 0) added.push_back(ad);
    }
  }
  // ad(x,y), ad(y,z) |- ad(x,z)
  for (const Predicate& a : *preds) {
    if (a.kind != PredKind::kAd) continue;
    for (const Predicate& b : *preds) {
      if (b.kind != PredKind::kAd || a.y != b.x) continue;
      Predicate t = Predicate::Ad(a.x, b.y);
      if (preds->count(t) == 0) added.push_back(t);
    }
  }
  // ad(x,y), contains(y,E) |- contains(x,E)
  for (const Predicate& a : *preds) {
    if (a.kind != PredKind::kAd) continue;
    for (const Predicate& c : *preds) {
      if (c.kind != PredKind::kContains || c.x != a.y) continue;
      Predicate up = Predicate::ContainsKey(a.x, c.expr_key);
      if (preds->count(up) == 0) added.push_back(up);
    }
  }
  if (added.empty()) return false;
  for (Predicate& p : added) preds->insert(std::move(p));
  return true;
}

}  // namespace

LogicalQuery Closure(const LogicalQuery& q) {
  LogicalQuery out = q;
  while (InferenceRound(&out.preds)) {
  }
  return out;
}

bool Derivable(const std::set<Predicate>& base, const Predicate& p) {
  if (p.kind == PredKind::kPc || p.kind == PredKind::kTag) {
    return false;  // no rule produces pc or tag predicates
  }
  std::set<Predicate> rest = base;
  rest.erase(p);
  while (true) {
    if (rest.count(p) > 0) return true;
    if (!InferenceRound(&rest)) return rest.count(p) > 0;
  }
}

LogicalQuery Core(const LogicalQuery& q) {
  LogicalQuery out = Closure(q);
  // Greedily delete redundant predicates until none remains. Theorem 1:
  // the result is the same whatever the order; we iterate in the set's
  // deterministic order (property tests shuffle to confirm).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Predicate& p : out.preds) {
      if (Derivable(out.preds, p)) {
        out.preds.erase(p);
        changed = true;
        break;  // iterator invalidated; restart scan
      }
    }
  }
  return out;
}

bool Equivalent(const LogicalQuery& a, const LogicalQuery& b) {
  return Closure(a) == Closure(b);
}

Result<Tpq> LogicalToTpq(const LogicalQuery& input) {
  LogicalQuery q = Core(input);

  // Collect variables (structural predicates first, then the rest so a
  // single-node query still has its variable).
  std::set<VarId> vars;
  bool has_structural = false;
  for (const Predicate& p : q.preds) {
    if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
      has_structural = true;
      vars.insert(p.x);
      vars.insert(p.y);
    }
  }
  if (!has_structural) {
    for (const Predicate& p : q.preds) vars.insert(p.x);
    if (vars.empty() && q.distinguished != kInvalidVar) {
      vars.insert(q.distinguished);
    }
  }
  if (vars.empty()) return Status::InvalidArgument("no variables");
  if (vars.count(q.distinguished) == 0) {
    return Status::InvalidArgument("distinguished variable not in query");
  }

  // Tag constraints: at most one per variable.
  std::map<VarId, TagId> tags;
  for (const Predicate& p : q.preds) {
    if (p.kind != PredKind::kTag) continue;
    if (vars.count(p.x) == 0) continue;  // auto-dropped variable
    auto [it, inserted] = tags.emplace(p.x, p.tag);
    if (!inserted && it->second != p.tag) {
      return Status::InvalidArgument("conflicting tag constraints on $" +
                                     std::to_string(p.x));
    }
  }

  // Incoming edge per variable: in a core, each non-root variable has
  // exactly one incoming pc or ad edge.
  std::map<VarId, std::pair<VarId, Axis>> incoming;
  for (const Predicate& p : q.preds) {
    if (p.kind != PredKind::kPc && p.kind != PredKind::kAd) continue;
    Axis axis = p.kind == PredKind::kPc ? Axis::kChild : Axis::kDescendant;
    auto [it, inserted] = incoming.emplace(p.y, std::make_pair(p.x, axis));
    if (!inserted) {
      return Status::InvalidArgument(
          "variable $" + std::to_string(p.y) +
          " has multiple incoming edges; not a tree pattern");
    }
  }

  // Exactly one root.
  VarId root = kInvalidVar;
  for (VarId v : vars) {
    if (incoming.count(v) == 0) {
      if (root != kInvalidVar) {
        return Status::InvalidArgument("pattern is disconnected");
      }
      root = v;
    }
  }
  if (root == kInvalidVar) {
    return Status::InvalidArgument("pattern has a cycle");
  }

  // Build the tree top-down.
  Tpq out;
  auto tag_of = [&](VarId v) {
    auto it = tags.find(v);
    return it == tags.end() ? kInvalidTag : it->second;
  };
  out.AddRootVar(root, tag_of(root));
  // Repeatedly attach variables whose parent is already present.
  std::set<VarId> placed = {root};
  while (placed.size() < vars.size()) {
    bool progress = false;
    for (VarId v : vars) {
      if (placed.count(v) > 0) continue;
      auto it = incoming.find(v);
      if (it == incoming.end()) continue;
      if (placed.count(it->second.first) == 0) continue;
      out.AddChildVar(v, it->second.first, it->second.second, tag_of(v));
      placed.insert(v);
      progress = true;
    }
    if (!progress) {
      return Status::InvalidArgument("pattern is disconnected or cyclic");
    }
  }

  // Attach contains and attribute predicates.
  for (const Predicate& p : q.preds) {
    if (p.kind != PredKind::kContains) continue;
    if (vars.count(p.x) == 0) continue;
    auto it = q.exprs.find(p.expr_key);
    if (it == q.exprs.end()) {
      // Expression registry can be incomplete for hand-built logical
      // queries; reconstruct a single-term expression from the key is not
      // possible in general, so report it.
      return Status::InvalidArgument("missing FTExp for key " + p.expr_key);
    }
    out.AddContains(p.x, it->second);
  }
  for (const auto& [v, preds] : q.attr_preds) {
    if (vars.count(v) == 0) continue;
    for (const AttrPred& a : preds) out.AddAttrPred(v, a);
  }
  out.SetDistinguished(q.distinguished);
  FLEXPATH_RETURN_IF_ERROR(out.Validate());
  return out;
}

bool IsValidRelaxationDrop(const Tpq& q, const std::set<Predicate>& dropped) {
  const LogicalQuery closure = Closure(ToLogical(q));
  const VarId root = q.root();
  LogicalQuery remainder = closure;
  for (const Predicate& p : dropped) remainder.preds.erase(p);

  // Auto-drop value predicates of variables that no longer appear in any
  // structural predicate (Section 3.3).
  std::set<VarId> alive;
  bool has_structural = false;
  for (const Predicate& p : remainder.preds) {
    if (p.kind == PredKind::kPc || p.kind == PredKind::kAd) {
      has_structural = true;
      alive.insert(p.x);
      alive.insert(p.y);
    }
  }
  if (has_structural) {
    for (auto it = remainder.preds.begin(); it != remainder.preds.end();) {
      if ((it->kind == PredKind::kTag || it->kind == PredKind::kContains) &&
          alive.count(it->x) == 0) {
        it = remainder.preds.erase(it);
      } else {
        ++it;
      }
    }
  }

  // (v) the root and the distinguished variable must survive.
  if (has_structural &&
      (alive.count(root) == 0 || alive.count(closure.distinguished) == 0)) {
    return false;
  }

  for (const Predicate& p : dropped) {
    // (iii) tag predicates only disappear with their variable.
    if (p.kind == PredKind::kTag) {
      if (!has_structural || alive.count(p.x) > 0) return false;
      continue;
    }
    // (iv) contains predicates are value-based and leave the query only
    // through promotion (Definition 2) or with their variable: a dropped
    // contains(x, E) needs x dead, or a surviving contains(·, E) on an
    // ancestor of x.
    if (p.kind != PredKind::kContains) continue;
    if (has_structural && alive.count(p.x) == 0) continue;  // var died
    bool promoted_survives = false;
    for (const Predicate& r : remainder.preds) {
      if (r.kind == PredKind::kContains && r.expr_key == p.expr_key &&
          closure.Has(Predicate::Ad(r.x, p.x))) {
        promoted_survives = true;
        break;
      }
    }
    if (!promoted_survives) return false;
  }

  // (vi) derivation consistency: for each expression, the remainder's
  // *minimal* carriers (those not derivable from a deeper surviving
  // carrier) must correspond one-to-one with original contains
  // predicates, each sitting on (an ancestor of) its original position.
  // This is what the operators span — a structural drop that detaches a
  // carrier while keeping its derived copy as an independent requirement
  // is outside the space Theorem 2's completeness covers.
  {
    // Original contains positions per expression key.
    std::map<std::string, std::vector<VarId>> originals;
    for (VarId v : q.Vars()) {
      for (const FtExpr& e : q.node(v).contains) {
        originals[e.ToString()].push_back(v);
      }
    }
    const LogicalQuery remainder_closure = Closure(remainder);
    std::map<std::string, std::vector<VarId>> minimal;
    for (const Predicate& p : remainder.preds) {
      if (p.kind != PredKind::kContains) continue;
      bool derivable_from_deeper = false;
      for (const Predicate& r : remainder.preds) {
        if (r.kind == PredKind::kContains && r.expr_key == p.expr_key &&
            r.x != p.x && remainder_closure.Has(Predicate::Ad(p.x, r.x))) {
          derivable_from_deeper = true;
          break;
        }
      }
      if (!derivable_from_deeper) minimal[p.expr_key].push_back(p.x);
    }
    for (const auto& [key, carriers] : minimal) {
      auto it = originals.find(key);
      if (it == originals.end()) return false;
      if (carriers.size() > it->second.size()) return false;
      for (VarId y : carriers) {
        bool attributable = false;
        for (VarId x : it->second) {
          if (y == x || closure.Has(Predicate::Ad(y, x))) {
            attributable = true;
            break;
          }
        }
        if (!attributable) return false;
      }
    }
  }

  // (i) must not be equivalent to the closure.
  if (Closure(remainder) == closure) return false;
  // (ii) the core must be a tree pattern query.
  return LogicalToTpq(remainder).ok();
}

}  // namespace flexpath
