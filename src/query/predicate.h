#ifndef FLEXPATH_QUERY_PREDICATE_H_
#define FLEXPATH_QUERY_PREDICATE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/ft_expr.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Query variable id ($1, $2, ... of the paper). Variable ids are stable
/// under relaxation: a relaxed query refers to the original query's
/// variables, which is what makes predicate-level scoring well defined.
using VarId = uint32_t;

inline constexpr VarId kInvalidVar = UINT32_MAX;

/// The predicate alphabet of a TPQ's logical form (Section 2.1):
/// structural predicates pc($x,$y) and ad($x,$y), the tag constraint
/// $x.tag = t, and contains($x, FTExp).
enum class PredKind : uint8_t {
  kPc = 0,
  kAd = 1,
  kTag = 2,
  kContains = 3,
};

/// One predicate of a logical query. Value type with total order (used to
/// keep predicate sets sorted/unique and to make closure/core
/// deterministic).
struct Predicate {
  PredKind kind = PredKind::kPc;
  VarId x = kInvalidVar;  ///< Subject (ancestor side for pc/ad).
  VarId y = kInvalidVar;  ///< Descendant side for pc/ad; unused otherwise.
  TagId tag = kInvalidTag;     ///< For kTag.
  std::string expr_key;        ///< For kContains: canonical FTExp text.

  static Predicate Pc(VarId x, VarId y) {
    return Predicate{PredKind::kPc, x, y, kInvalidTag, ""};
  }
  static Predicate Ad(VarId x, VarId y) {
    return Predicate{PredKind::kAd, x, y, kInvalidTag, ""};
  }
  static Predicate Tag(VarId x, TagId tag) {
    return Predicate{PredKind::kTag, x, kInvalidVar, tag, ""};
  }
  static Predicate Contains(VarId x, const FtExpr& expr) {
    return Predicate{PredKind::kContains, x, kInvalidVar, kInvalidTag,
                     expr.ToString()};
  }
  static Predicate ContainsKey(VarId x, std::string key) {
    return Predicate{PredKind::kContains, x, kInvalidVar, kInvalidTag,
                     std::move(key)};
  }

  friend bool operator==(const Predicate&, const Predicate&) = default;
  friend auto operator<=>(const Predicate&, const Predicate&) = default;

  /// Human-readable form, e.g. `pc($1,$2)` or `contains($4,"xml")`.
  std::string ToString(const TagDict* dict = nullptr) const;
};

/// An attribute comparison predicate ($i.attr relOp value, Section 2.1).
/// These are value-based predicates that are never relaxed; they filter
/// candidate elements during evaluation. Comparison is numeric when both
/// sides parse as numbers, lexicographic otherwise.
struct AttrPred {
  enum class Op : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  TagId attr = kInvalidTag;
  Op op = Op::kEq;
  std::string value;

  /// Applies the comparison to an attribute value from the data.
  bool Matches(const std::string& data_value) const;

  friend bool operator==(const AttrPred&, const AttrPred&) = default;

  std::string ToString(const TagDict* dict = nullptr) const;
};

}  // namespace flexpath

#endif  // FLEXPATH_QUERY_PREDICATE_H_
