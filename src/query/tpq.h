#ifndef FLEXPATH_QUERY_TPQ_H_
#define FLEXPATH_QUERY_TPQ_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/ft_expr.h"
#include "query/predicate.h"
#include "xml/tag_dict.h"

namespace flexpath {

/// Edge axis between a TPQ node and its parent.
enum class Axis : uint8_t {
  kChild,       ///< parent-child (single edge in the paper's figures)
  kDescendant,  ///< ancestor-descendant (double edge)
};

/// One node of a tree pattern query.
struct TpqNode {
  VarId var = kInvalidVar;     ///< Stable variable id ($i).
  TagId tag = kInvalidTag;     ///< Tag constraint; kInvalidTag = wildcard.
  std::vector<FtExpr> contains;    ///< contains($var, FTExp) predicates.
  std::vector<AttrPred> attr_preds;  ///< Never-relaxed value predicates.
};

/// A tree pattern query (T, F) — the paper's query class (Section 2.1):
/// a rooted tree with pc/ad edges, tag constraints, contains predicates
/// and a distinguished answer node. Variable ids are stable identities;
/// relaxation operators produce new Tpqs that reuse the original ids so
/// that predicate weights and penalties stay attached to the right
/// variables.
class Tpq {
 public:
  Tpq() = default;
  Tpq(const Tpq&) = default;
  Tpq& operator=(const Tpq&) = default;
  Tpq(Tpq&&) = default;
  Tpq& operator=(Tpq&&) = default;

  /// Creates the root node. Must be called exactly once, first.
  VarId AddRoot(TagId tag);

  /// Adds a node under `parent_var` (which must exist) with the given
  /// axis and tag constraint; returns the new variable id.
  VarId AddChild(VarId parent_var, Axis axis, TagId tag);

  /// Like AddRoot/AddChild but with a caller-chosen variable id — used
  /// when reconstructing a TPQ from a logical form, where variable ids
  /// must be preserved. Ids must be unique within the query.
  void AddRootVar(VarId var, TagId tag);
  void AddChildVar(VarId var, VarId parent_var, Axis axis, TagId tag);

  /// Attaches contains($var, expr).
  void AddContains(VarId var, FtExpr expr);

  /// Attaches an attribute predicate to $var.
  void AddAttrPred(VarId var, AttrPred pred);

  /// Marks $var as the distinguished (answer) node. Defaults to the root.
  void SetDistinguished(VarId var) { distinguished_ = var; }

  // --- Accessors -------------------------------------------------------

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Variables in insertion (pre-order-ish) order.
  std::vector<VarId> Vars() const;

  VarId root() const { return nodes_.empty() ? kInvalidVar : nodes_[0].var; }
  VarId distinguished() const { return distinguished_; }

  bool HasVar(VarId var) const { return IndexOf(var) >= 0; }
  const TpqNode& node(VarId var) const;
  TpqNode& mutable_node(VarId var);

  /// Parent variable of $var (kInvalidVar for the root).
  VarId Parent(VarId var) const;

  /// Axis of the edge from Parent($var) to $var.
  Axis AxisOf(VarId var) const;
  void SetAxis(VarId var, Axis axis);

  /// Children of $var in insertion order.
  std::vector<VarId> Children(VarId var) const;

  bool IsLeaf(VarId var) const { return Children(var).empty(); }

  /// True iff `anc` is a proper ancestor of `var` in the pattern tree.
  bool IsAncestorVar(VarId anc, VarId var) const;

  // --- Mutators used by relaxation operators ---------------------------

  /// Removes leaf $var (with its predicates). If $var was distinguished,
  /// its parent becomes distinguished (Section 3.5.2). Fails on the root
  /// or a non-leaf.
  Status DeleteLeaf(VarId var);

  /// Re-parents the subtree rooted at $var under `new_parent` with an
  /// ad-edge (Section 3.5.3 uses the grandparent). Fails if `new_parent`
  /// is inside the moved subtree.
  Status Reparent(VarId var, VarId new_parent);

  /// Moves every contains predicate on $var to its parent
  /// (Section 3.5.4). Fails on the root.
  Status PromoteContains(VarId var);

  // --- Derived forms ---------------------------------------------------

  /// Structural sanity check: one root, acyclic parent links, var ids
  /// unique, distinguished var present.
  Status Validate() const;

  /// XPath-like rendering for diagnostics, e.g.
  /// `//article[.//algorithm]/section` — linearizes the tree with the
  /// distinguished node as the spine end.
  std::string ToString(const TagDict& dict) const;

  /// Order-insensitive canonical form; equal trees (same shape, tags,
  /// axes, predicates, distinguished position) yield equal strings even
  /// if built in different child orders or with different var ids.
  std::string CanonicalString() const;

  /// Total number of contains predicates.
  size_t ContainsCount() const;

 private:
  int IndexOf(VarId var) const;
  std::string CanonicalSubtree(size_t idx) const;

  std::vector<TpqNode> nodes_;
  std::vector<int> parent_;  ///< Index into nodes_; -1 for root.
  std::vector<Axis> axis_;   ///< Axis to parent; root entry unused.
  VarId distinguished_ = kInvalidVar;
  VarId next_var_ = 1;  ///< The paper numbers variables from $1.
};

}  // namespace flexpath

#endif  // FLEXPATH_QUERY_TPQ_H_
