#include "shard/partition.h"

#include <algorithm>

namespace flexpath {

std::vector<ShardRange> PartitionDocs(size_t num_docs, size_t num_shards) {
  std::vector<ShardRange> ranges;
  if (num_shards == 0) return ranges;
  ranges.reserve(num_shards);
  const size_t quot = num_docs / num_shards;
  const size_t rem = num_docs % num_shards;
  DocId begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    const DocId end =
        begin + static_cast<DocId>(quot + (i < rem ? 1 : 0));
    ranges.push_back(ShardRange{begin, end});
    begin = end;
  }
  return ranges;
}

std::vector<ShardRange> PartitionAtCuts(size_t num_docs,
                                        std::vector<DocId> cuts) {
  const DocId total = static_cast<DocId>(num_docs);
  for (DocId& c : cuts) c = std::min(c, total);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<ShardRange> ranges;
  ranges.reserve(cuts.size() + 1);
  DocId begin = 0;
  for (DocId c : cuts) {
    ranges.push_back(ShardRange{begin, c});
    begin = c;
  }
  ranges.push_back(ShardRange{begin, total});
  return ranges;
}

}  // namespace flexpath
