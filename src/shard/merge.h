#ifndef FLEXPATH_SHARD_MERGE_H_
#define FLEXPATH_SHARD_MERGE_H_

#include <cstddef>
#include <vector>

#include "rank/score.h"

namespace flexpath {

/// Per-shard merge accounting, filled by MergeShardAnswers. `taken[i]`
/// is how many of shard i's answers made the merged prefix; everything
/// past that cursor was cut off by early termination. `discarded`
/// collects those cut answers when requested — the property-test seam
/// for the K'-bound invariant (no discarded answer may outrank the
/// global k-th).
struct ShardMergeStats {
  std::vector<size_t> taken;
  std::vector<RankedAnswer> discarded;
  bool collect_discarded = false;
};

/// The per-shard candidate bound K': how many answers a shard must
/// retain so the coordinator can still produce the exact global top k.
/// For a single-pass evaluation k itself is sound under any total
/// order — a shard's (k+1)-th local answer is outranked by k local
/// answers, hence by k global ones (the scatter-gather reading of
/// Theorem 3 monotonicity: restricting to a shard never improves a
/// discarded answer's rank). Two cases need the unbounded sentinel
/// (SIZE_MAX, meaning "keep everything"):
///  - k == 0: the caller wants the full answer list (the encoded
///    engine's unpruned retry pass does this);
///  - multi-round merges (DPO): rounds dedup answers by *first*
///    incarnation, and a later round's score for the same node is not
///    bounded by its earlier one once keyword scores enter — so a
///    truncated round list could silently change which incarnation the
///    merge keeps. Round lists therefore travel whole;
///  - `truncation_safe` false: the scheme's certificate refutes FX303
///    (SchemeCertificate::truncation_safe, DESIGN.md §16), so the
///    "outranked locally implies outranked globally" step above is not
///    proven and every per-shard answer must travel. Callers pass
///    the certificate verdict rather than deciding per scheme by name.
size_t ShardKPrime(size_t k, bool single_pass, bool truncation_safe);

/// K-way merges per-shard answer lists — each already sorted by the
/// finalize order (RanksBefore under `scheme`, ties broken by node id) —
/// into the global order, stopping after `k` answers (k == 0 merges
/// everything). Shards are document-disjoint, so no cross-shard dedup is
/// needed; the heap comparator breaks exact score ties by node id, which
/// restores global document order and makes the merged prefix
/// byte-identical to a single-shard sort. `stats` is optional.
std::vector<RankedAnswer> MergeShardAnswers(
    const std::vector<std::vector<RankedAnswer>>& per_shard, size_t k,
    RankScheme scheme, ShardMergeStats* stats = nullptr);

}  // namespace flexpath

#endif  // FLEXPATH_SHARD_MERGE_H_
