#ifndef FLEXPATH_SHARD_PARTITION_H_
#define FLEXPATH_SHARD_PARTITION_H_

#include <cstddef>
#include <vector>

#include "xml/corpus.h"

namespace flexpath {

/// One shard's slice of the corpus: documents [doc_begin, doc_end).
/// Ranges are contiguous and ordered, so concatenating per-shard scan
/// lists in shard order reproduces global document order — the property
/// every byte-identity argument in DESIGN.md §15 leans on.
struct ShardRange {
  DocId doc_begin = 0;
  DocId doc_end = 0;

  size_t size() const { return doc_end - doc_begin; }
  bool empty() const { return doc_begin == doc_end; }
  bool Contains(DocId d) const { return d >= doc_begin && d < doc_end; }

  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

/// Splits [0, num_docs) into exactly `num_shards` contiguous ranges whose
/// sizes differ by at most one (the first num_docs % num_shards shards
/// get the extra document). With num_shards > num_docs the tail shards
/// are empty — degenerate but valid; the engine treats an empty shard as
/// a shard that contributes nothing. num_shards == 0 yields no ranges.
std::vector<ShardRange> PartitionDocs(size_t num_docs, size_t num_shards);

/// Splits [0, num_docs) at the given cut points (any order, duplicates
/// and out-of-range values tolerated: they are clamped, sorted and
/// deduped). N cut points yield N+1 ranges, some possibly empty — the
/// shard-boundary fuzzer drives this with random cuts to prove answers
/// are invariant under *any* placement of shard boundaries.
std::vector<ShardRange> PartitionAtCuts(size_t num_docs,
                                        std::vector<DocId> cuts);

}  // namespace flexpath

#endif  // FLEXPATH_SHARD_PARTITION_H_
