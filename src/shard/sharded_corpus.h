#ifndef FLEXPATH_SHARD_SHARDED_CORPUS_H_
#define FLEXPATH_SHARD_SHARDED_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "shard/partition.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "xml/corpus.h"
#include "xml/type_hierarchy.h"

namespace flexpath {

/// A corpus partitioned into contiguous document-range shards, each with
/// its own ElementIndex and DocumentStats restricted to the shard's
/// range (DESIGN.md §15). The underlying Corpus is shared, NOT copied:
/// NodeRefs produced against a shard index are global, so per-shard
/// partial results join, score and merge without any id remapping, and
/// the IR engine (whose tf-idf normalization is corpus-wide) is shared
/// too — a per-shard IR engine would change keyword scores and break
/// byte-identity with single-shard execution.
///
/// The corpus must not change after construction. ShardedCorpus captures
/// Corpus::generation() at build time; the query layer compares it (and
/// the global index's) against the live generation and hard-errors on
/// mismatch rather than serving answers from a stale partition.
class ShardedCorpus {
 public:
  /// Balanced partition into `num_shards` contiguous ranges.
  ShardedCorpus(const Corpus* corpus, const TypeHierarchy* hierarchy,
                size_t num_shards)
      : ShardedCorpus(corpus, hierarchy,
                      PartitionDocs(corpus->size(), num_shards)) {}

  /// Explicit ranges — must be PartitionDocs/PartitionAtCuts-shaped
  /// (contiguous, ordered, covering [0, corpus->size())); the
  /// shard-boundary fuzzer builds these from random cut points.
  ShardedCorpus(const Corpus* corpus, const TypeHierarchy* hierarchy,
                std::vector<ShardRange> ranges);

  ShardedCorpus(const ShardedCorpus&) = delete;
  ShardedCorpus& operator=(const ShardedCorpus&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const ShardRange& range(size_t i) const { return shards_[i].range; }
  const ElementIndex& index(size_t i) const { return *shards_[i].index; }
  const DocumentStats& stats(size_t i) const { return *shards_[i].stats; }
  const Corpus& corpus() const { return *corpus_; }
  const TypeHierarchy* hierarchy() const { return hierarchy_; }

  /// Corpus::generation() when the partition was built.
  uint64_t source_generation() const { return source_generation_; }

  /// Shard index of the document, or num_shards() if out of range.
  size_t ShardOf(DocId d) const;

  /// Merged statistics: per-shard tables summed — by the reconciliation
  /// identity these equal the full-corpus DocumentStats figures.
  uint64_t MergedTagCount(TagId t) const;
  uint64_t MergedPcCount(TagId t1, TagId t2) const;
  uint64_t MergedAdCount(TagId t1, TagId t2) const;

  /// Verifies the merge identity against full-corpus statistics: every
  /// #(t), #pc, #ad, and existence table summed across shards must equal
  /// the global table exactly — the precondition for using either side
  /// interchangeably in selectivity estimation. Returns Internal with a
  /// diagnostic naming the first divergent statistic. Cheap (tag
  /// alphabets are small); the query layer runs it once per partition.
  Status ReconcileWith(const DocumentStats& global) const;

  /// Sum of OutstandingPins() across every shard index — scan-list leak
  /// auditing for the sharded path.
  size_t OutstandingPins() const;

 private:
  struct Shard {
    ShardRange range;
    std::unique_ptr<ElementIndex> index;
    std::unique_ptr<DocumentStats> stats;
  };

  const Corpus* corpus_;
  const TypeHierarchy* hierarchy_;
  uint64_t source_generation_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace flexpath

#endif  // FLEXPATH_SHARD_SHARDED_CORPUS_H_
