#include "shard/merge.h"

#include <algorithm>
#include <limits>

namespace flexpath {

namespace {

bool AnswerBefore(const RankedAnswer& a, const RankedAnswer& b,
                  RankScheme scheme) {
  if (RanksBefore(a.score, b.score, scheme)) return true;
  if (RanksBefore(b.score, a.score, scheme)) return false;
  return a.node < b.node;
}

}  // namespace

size_t ShardKPrime(size_t k, bool single_pass, bool truncation_safe) {
  if (k == 0 || !single_pass || !truncation_safe) {
    return std::numeric_limits<size_t>::max();
  }
  return k;
}

std::vector<RankedAnswer> MergeShardAnswers(
    const std::vector<std::vector<RankedAnswer>>& per_shard, size_t k,
    RankScheme scheme, ShardMergeStats* stats) {
  const size_t n = per_shard.size();
  std::vector<size_t> cursor(n, 0);

  // Heap of shard indices; the shard whose next answer ranks first sits
  // on top. push_heap/pop_heap expose the *largest* element, so the
  // comparator says "x is worse than y".
  auto worse = [&](size_t x, size_t y) {
    return AnswerBefore(per_shard[y][cursor[y]], per_shard[x][cursor[x]],
                        scheme);
  };
  std::vector<size_t> heap;
  heap.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!per_shard[i].empty()) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  std::vector<RankedAnswer> merged;
  while (!heap.empty() && (k == 0 || merged.size() < k)) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    const size_t s = heap.back();
    merged.push_back(per_shard[s][cursor[s]]);
    if (++cursor[s] < per_shard[s].size()) {
      std::push_heap(heap.begin(), heap.end(), worse);
    } else {
      heap.pop_back();
    }
  }

  if (stats != nullptr) {
    stats->taken.assign(cursor.begin(), cursor.end());
    if (stats->collect_discarded) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = cursor[i]; j < per_shard[i].size(); ++j) {
          stats->discarded.push_back(per_shard[i][j]);
        }
      }
    }
  }
  return merged;
}

}  // namespace flexpath
