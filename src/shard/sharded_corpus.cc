#include "shard/sharded_corpus.h"

#include <string>
#include <unordered_map>

namespace flexpath {

namespace {

uint64_t PairKey(TagId a, TagId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

ShardedCorpus::ShardedCorpus(const Corpus* corpus,
                             const TypeHierarchy* hierarchy,
                             std::vector<ShardRange> ranges)
    : corpus_(corpus),
      hierarchy_(hierarchy),
      source_generation_(corpus->generation()) {
  shards_.reserve(ranges.size());
  for (const ShardRange& r : ranges) {
    Shard s;
    s.range = r;
    s.index = std::make_unique<ElementIndex>(corpus_, hierarchy_,
                                             r.doc_begin, r.doc_end);
    s.stats = std::make_unique<DocumentStats>(corpus_, r.doc_begin,
                                              r.doc_end);
    shards_.push_back(std::move(s));
  }
}

size_t ShardedCorpus::ShardOf(DocId d) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].range.Contains(d)) return i;
  }
  return shards_.size();
}

uint64_t ShardedCorpus::MergedTagCount(TagId t) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.stats->TagCount(t);
  return total;
}

uint64_t ShardedCorpus::MergedPcCount(TagId t1, TagId t2) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.stats->PcCount(t1, t2);
  return total;
}

uint64_t ShardedCorpus::MergedAdCount(TagId t1, TagId t2) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.stats->AdCount(t1, t2);
  return total;
}

Status ShardedCorpus::ReconcileWith(const DocumentStats& global) const {
  // Tag counts: dense vectors, directly comparable slot by slot.
  for (TagId t = 0; t < static_cast<TagId>(global.NumTags()); ++t) {
    const uint64_t merged = MergedTagCount(t);
    if (merged != global.TagCount(t)) {
      return Status::Internal(
          "shard statistics diverge from corpus statistics: #(" +
          corpus_->tags().Name(t) + ") merged=" + std::to_string(merged) +
          " global=" + std::to_string(global.TagCount(t)));
    }
  }
  // Pair tables: sum shard maps, then require exact equality with the
  // global map in both directions (a key in one side but not the other
  // is a divergence too).
  auto check = [&](const char* name, auto each) -> Status {
    std::unordered_map<uint64_t, uint64_t> merged;
    for (const Shard& s : shards_) {
      each(*s.stats, [&](TagId a, TagId b, uint64_t n) {
        merged[PairKey(a, b)] += n;
      });
    }
    std::unordered_map<uint64_t, uint64_t> expected;
    each(global, [&](TagId a, TagId b, uint64_t n) {
      expected[PairKey(a, b)] += n;
    });
    if (merged != expected) {
      return Status::Internal(
          std::string("shard statistics diverge from corpus statistics "
                      "in the ") +
          name + " table (" + std::to_string(merged.size()) +
          " merged vs " + std::to_string(expected.size()) +
          " global entries, or differing counts)");
    }
    return Status::OK();
  };
  FLEXPATH_RETURN_IF_ERROR(check("#pc", [](const DocumentStats& s, auto fn) {
    s.ForEachPcCount(fn);
  }));
  FLEXPATH_RETURN_IF_ERROR(check("#ad", [](const DocumentStats& s, auto fn) {
    s.ForEachAdCount(fn);
  }));
  FLEXPATH_RETURN_IF_ERROR(
      check("pc-exists", [](const DocumentStats& s, auto fn) {
        s.ForEachPcExists(fn);
      }));
  FLEXPATH_RETURN_IF_ERROR(
      check("ad-exists", [](const DocumentStats& s, auto fn) {
        s.ForEachAdExists(fn);
      }));
  return Status::OK();
}

size_t ShardedCorpus::OutstandingPins() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.index->OutstandingPins();
  return total;
}

}  // namespace flexpath
