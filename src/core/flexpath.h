#ifndef FLEXPATH_CORE_FLEXPATH_H_
#define FLEXPATH_CORE_FLEXPATH_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/plan_verifier.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "exec/topk.h"
#include "ir/engine.h"
#include "ir/thesaurus.h"
#include "obs/query_log.h"
#include "obs/query_stats.h"
#include "ir/tokenizer.h"
#include "query/tpq.h"
#include "query/xpath_parser.h"
#include "rank/scheme_registry.h"
#include "rank/score.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "xml/corpus.h"
#include "xml/type_hierarchy.h"

namespace flexpath {

/// One answer as returned by the public API: scores plus enough context
/// (tag, a snippet of text) to display it.
struct QueryAnswer {
  NodeRef node;
  AnswerScore score;
  std::string tag;
  std::string snippet;  ///< First ~120 characters of the subtree text.
};

/// The FleXPath system (Figure 7): load XML documents, build the indexes,
/// then run top-K queries whose structural part is interpreted as a
/// flexible template (Sections 3-5).
///
/// Typical usage:
///   FlexPath fp;
///   fp.AddDocumentXml(xml_text);
///   fp.Build();
///   auto answers = fp.Query("//article[./section[./paragraph and "
///                           ".contains(\"XML\" and \"streaming\")]]",
///                           {.k = 10});
class FlexPath {
 public:
  explicit FlexPath(TokenizerOptions tokenizer_opts = {});
  ~FlexPath();

  FlexPath(const FlexPath&) = delete;
  FlexPath& operator=(const FlexPath&) = delete;

  /// Parses and adds one XML document. Must be called before Build().
  Result<DocId> AddDocumentXml(std::string_view xml);

  /// Reads and parses an XML file from disk.
  Result<DocId> AddDocumentFile(const std::string& path);

  /// Adds an already-built document (built against tags()).
  DocId AddDocument(Document doc);

  /// Mutable element-type hierarchy for the tag-generalization extension
  /// (Section 3.4). Populate before Build(); a query node constrained to
  /// a supertype then matches all of its subtypes.
  TypeHierarchy* type_hierarchy() { return &hierarchy_; }

  /// Mutable synonym table. When non-empty, contains expressions in
  /// queries are expanded so each keyword also matches its synonyms
  /// (Section 3.4's thesaurus relaxation, applied on the IR side).
  Thesaurus* thesaurus() { return &thesaurus_; }

  /// Direct access to the corpus tag dictionary (for building documents
  /// programmatically, e.g. with the XMark generator).
  TagDict* tags();

  /// Freezes the corpus and builds the element index, the inverted
  /// index/IR engine, and the statistics. Must be called exactly once,
  /// after all documents are added and before any query.
  Status Build();

  /// Serializes the corpus plus everything Build() derives from it into
  /// the packed single-file format (DESIGN.md §17) at `path`. Callable
  /// before or after Build(); the instance is unchanged. A subsequent
  /// OpenPacked of the file answers every query byte-identically to this
  /// instance (same answers, scores, relaxations, and ExecCounters —
  /// the differential suite asserts it).
  Status SavePacked(const std::string& path) const;

  /// Opens a packed corpus file instead of AddDocument* + Build(): maps
  /// the file, restores tag dictionary / statistics / tokenizer options
  /// from it, and wires the element index, inverted index, and corpus to
  /// mmap-backed lazy implementations — no documents are decoded until a
  /// query touches them, so open time is O(directories), not O(data).
  /// Must be called on a fresh instance (no documents added, not built);
  /// leaves the instance queryable (built() == true). Populate
  /// type_hierarchy() before calling, as with Build().
  Status OpenPacked(const std::string& path,
                    storage::ReaderOptions reader_opts = {});

  /// Non-null after a successful OpenPacked: the mmap-backed reader,
  /// exposing buffer-pool stats and the file header.
  const storage::StorageReader* packed_reader() const {
    return reader_.get();
  }

  /// Parses an XPath-fragment query string into a tree pattern.
  Result<Tpq> Parse(std::string_view xpath) const;

  /// Runs a top-K query (parse + evaluate). Defaults: structure-first
  /// ranking, the Hybrid algorithm, parallel execution across all cores
  /// (TopKOptions::num_threads = 0; set 1 for the serial path — answers
  /// and counters are identical either way, see DESIGN.md §10).
  Result<std::vector<QueryAnswer>> Query(std::string_view xpath,
                                         const TopKOptions& opts = {},
                                         Algorithm algo = Algorithm::kHybrid);

  /// Same, for an already-parsed query; also exposes execution counters.
  /// `query_text`, when non-empty, is the original query string — it is
  /// what the workload-capture log records (a Tpq rendering is for
  /// diagnostics and need not re-parse). Query() passes its XPath through
  /// automatically.
  Result<TopKResult> QueryTpq(const Tpq& q, const TopKOptions& opts = {},
                              Algorithm algo = Algorithm::kHybrid,
                              std::string_view query_text = {});

  /// Renders a query back to text (diagnostics).
  std::string Describe(const Tpq& q) const;

  // --- Static analysis (flexcheck) --------------------------------------

  /// Runs the semantic analyzer on a parsed query: closure-based
  /// structural checks always, plus corpus-level unsatisfiability
  /// (empty tags, dead edges, unmatched contains) after Build(). The
  /// diagnostics are also emitted through the structured logger under
  /// the "analysis" module. See src/analysis/ and DESIGN.md §11 for the
  /// diagnostic-code table.
  AnalysisReport Analyze(const Tpq& q) const;

  /// Parse + Analyze in one call (the CLI's --check path). Fails only
  /// when the query does not parse; semantic problems come back as
  /// diagnostics in the report.
  Result<AnalysisReport> AnalyzeXPath(std::string_view xpath) const;

  /// Statically verifies the full relaxation schedule BuildSchedule
  /// emits for `q` against Theorem 2 (see analysis/plan_verifier.h for
  /// the V001-V006 verdict codes). Requires Build(); the verdicts carry
  /// the static-selectivity result used by TopKOptions::static_prune.
  Result<std::vector<PlanVerdict>> VerifySchedule(const Tpq& q) const;

  /// The analyzer context over this instance's index/stats/IR — what
  /// Analyze() and the static_prune path consult. Fields are null
  /// before Build() (except the tag dictionary).
  AnalyzerContext analyzer_context() const;

  /// The score-algebra certificate of `scheme` (flexcheck v2, DESIGN.md
  /// §16): the four statically proved/refuted properties — relaxation
  /// monotonicity, order invariance, truncation safety, cache exactness
  /// — plus the optimization directives the engine derives from them.
  /// NotFound for a scheme value the registry has never seen. Corpus
  /// independent; works before Build().
  Result<SchemeCertificate> CertifyScheme(RankScheme scheme) const;

  /// JSON array with the certificate of every registered scheme (the
  /// CLI --certify payload, uploaded as a CI artifact). Process-wide,
  /// like the registry itself.
  static std::string SchemeCertificatesJson();

  // Component access for advanced use (benchmarks, tests).
  const Corpus& corpus() const { return corpus_; }
  const ElementIndex* element_index() const { return element_index_.get(); }
  const DocumentStats* stats() const { return stats_.get(); }
  IrEngine* ir_engine() { return ir_.get(); }
  bool built() const { return built_; }

  // --- Observability ----------------------------------------------------

  /// The process-wide metrics registry (counters, gauges, latency
  /// histograms recorded by every pipeline stage).
  MetricsRegistry& metrics() const { return MetricsRegistry::Global(); }

  /// One JSON object with a snapshot of every metric; see MetricsToJson()
  /// in common/metrics.h for the schema.
  std::string MetricsJson() const;

  /// The same snapshot in the Prometheus text exposition format
  /// (MetricsToPrometheus in common/metrics.h).
  std::string MetricsPrometheus() const;

  /// Per-query-shape cumulative statistics for this instance: every
  /// QueryTpq/Query run is folded into its shape's aggregate (keyed by
  /// FingerprintTpq), the recent-queries ring, and — when
  /// TopKOptions::slow_query_ms is set — the slow-query log.
  QueryStatsStore* query_stats() { return &query_stats_; }
  const QueryStatsStore* query_stats() const { return &query_stats_; }

  /// One JSON object with the per-shape aggregates, recent executions
  /// and slow-query log; see QueryStatsStore::ToJson() for the schema.
  std::string QueryStatsJson() const { return query_stats_.ToJson(); }

  /// One JSON object with the state of every cache: the process-wide
  /// sub-plan result cache (DESIGN.md §12), this instance's IR
  /// contains-result cache, its merged-scan cache, and — for a packed
  /// corpus — the storage buffer pools (element tables and posting
  /// lists; null otherwise). Fields for the instance caches are null
  /// before Build()/OpenPacked().
  std::string CacheStatsJson() const;

  /// Sets the byte budget of the process-wide sub-plan result cache
  /// (ResultCache::Global(), the kShared tier), evicting immediately if
  /// over. Affects every FlexPath instance in the process.
  void SetSharedResultCacheBudget(size_t budget_bytes);

  /// Phase-by-phase trace of the last Build() call (element index,
  /// statistics, IR engine); null before Build().
  std::shared_ptr<const QueryTrace> build_trace() const {
    return build_trace_;
  }

  /// Trace of the most recent Query/QueryTpq call that collected one
  /// (TopKOptions::collect_trace, or a slow-query trigger); null until
  /// then. Under concurrent queries, "last" means last to finish.
  std::shared_ptr<const QueryTrace> last_query_trace() const;

  /// The last query trace rendered in the Chrome Trace Event Format
  /// (chrome://tracing, Perfetto; see TraceToChromeJson in
  /// common/trace.h). Empty string when no trace has been collected.
  std::string LastTraceChromeJson() const;

  /// JSON dump of the process-wide crash-safe flight recorder ring
  /// (FlightRecorder::Global().ToJson()): the most recent ~4k runtime
  /// events — query start/end, relaxation-round lifecycle, shared-cache
  /// evictions, slow queries and budget trips.
  std::string FlightRecorderJson() const;

  /// Replaces this instance's query-statistics capacities (shape table,
  /// recent ring, slow-query log) at runtime, trimming immediately if the
  /// new capacities are smaller. See QueryStatsStore::SetOptions.
  void SetQueryStatsOptions(const QueryStatsOptions& opts);

  /// Attaches (or detaches, with nullptr) a workload-capture log: every
  /// subsequent QueryTpq/Query run appends one JSON line (query text,
  /// options, result metadata, resource usage, answers digest) that
  /// flexpath_replay can re-execute. Non-owning — the writer must outlive
  /// its use; pass nullptr before destroying it. No writer attached means
  /// zero capture cost (one relaxed atomic load per query).
  void SetQueryLog(QueryLogWriter* log);
  QueryLogWriter* query_log() const {
    return query_log_.load(std::memory_order_relaxed);
  }

  /// One JSON object with this instance's cumulative per-query resource
  /// accounting — query/error/sharded-query counts plus the summed and
  /// per-query-mean ResourceUsage across every QueryTpq run:
  ///   {"queries":..,"errors":..,"sharded_queries":..,
  ///    "usage_total":{"cpu_ms":..,...},"usage_mean":{...}}
  std::string VarzJson() const;

  /// One JSON object identifying this build and instance: library
  /// version, compiler, build mode, and corpus summary (documents,
  /// elements, distinct tags, built flag). Static facts for the /buildz
  /// admin route.
  std::string BuildInfoJson() const;

 private:
  /// Applies the thesaurus to every contains predicate of `q` in place.
  void ExpandContains(Tpq* q) const;

  TokenizerOptions tokenizer_opts_;
  Corpus corpus_;
  TypeHierarchy hierarchy_;
  Thesaurus thesaurus_;
  bool built_ = false;
  /// Set by OpenPacked; shared with the corpus backing, the packed
  /// element index, and the packed posting source.
  std::shared_ptr<storage::StorageReader> reader_;
  std::unique_ptr<ElementIndex> element_index_;
  std::unique_ptr<DocumentStats> stats_;
  std::unique_ptr<IrEngine> ir_;
  std::unique_ptr<TopKProcessor> processor_;
  std::shared_ptr<const QueryTrace> build_trace_;
  QueryStatsStore query_stats_;
  mutable Mutex trace_mu_;
  std::shared_ptr<const QueryTrace> last_query_trace_ GUARDED_BY(trace_mu_);
  std::atomic<QueryLogWriter*> query_log_{nullptr};
  mutable Mutex varz_mu_;
  uint64_t varz_queries_ GUARDED_BY(varz_mu_) = 0;
  uint64_t varz_errors_ GUARDED_BY(varz_mu_) = 0;
  uint64_t varz_sharded_queries_ GUARDED_BY(varz_mu_) = 0;
  ResourceUsage varz_usage_ GUARDED_BY(varz_mu_);
};

}  // namespace flexpath

#endif  // FLEXPATH_CORE_FLEXPATH_H_
