#include "core/flexpath.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/json_util.h"
#include "common/log.h"
#include "obs/flight_recorder.h"
#include "relax/schedule.h"

namespace flexpath {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

FlexPath::FlexPath(TokenizerOptions tokenizer_opts)
    : tokenizer_opts_(tokenizer_opts) {}

FlexPath::~FlexPath() = default;

Result<DocId> FlexPath::AddDocumentXml(std::string_view xml) {
  if (built_) {
    return Status::InvalidArgument("cannot add documents after Build()");
  }
  static Histogram* m_parse =
      MetricsRegistry::Global().histogram("build.parse_ms");
  static Counter* m_docs =
      MetricsRegistry::Global().counter("build.documents_parsed");
  const auto start = std::chrono::steady_clock::now();
  Result<DocId> id = corpus_.AddXml(xml);
  if (id.ok()) {
    m_parse->Observe(MsSince(start));
    m_docs->Inc();
  }
  return id;
}

Result<DocId> FlexPath::AddDocumentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return AddDocumentXml(buffer.str());
}

DocId FlexPath::AddDocument(Document doc) {
  return corpus_.Add(std::move(doc));
}

TagDict* FlexPath::tags() { return corpus_.tags(); }

Status FlexPath::Build() {
  if (built_) return Status::InvalidArgument("Build() already called");
  if (corpus_.size() == 0) {
    return Status::InvalidArgument("no documents added");
  }
  TraceCollector collector("build");
  collector.current()->Annotate("documents",
                                static_cast<uint64_t>(corpus_.size()));
  collector.current()->Annotate("elements",
                                static_cast<uint64_t>(corpus_.TotalNodes()));
  {
    Span span(&collector, "element_index");
    element_index_ = std::make_unique<ElementIndex>(
        &corpus_, hierarchy_.empty() ? nullptr : &hierarchy_);
  }
  {
    Span span(&collector, "document_stats");
    stats_ = std::make_unique<DocumentStats>(&corpus_);
  }
  {
    Span span(&collector, "ir_engine");
    ir_ = std::make_unique<IrEngine>(&corpus_, tokenizer_opts_);
  }
  processor_ = std::make_unique<TopKProcessor>(
      element_index_.get(), stats_.get(), ir_.get(), &query_stats_);
  QueryTrace trace = collector.Finish();
  static Histogram* m_build =
      MetricsRegistry::Global().histogram("build.total_ms");
  static Counter* m_builds = MetricsRegistry::Global().counter("build.count");
  m_build->Observe(trace.root.elapsed_ms);
  m_builds->Inc();
  FLEXPATH_LOG_INFO("core", "index built",
                    {"documents", corpus_.size()},
                    {"elements", corpus_.TotalNodes()},
                    {"distinct_tags", std::as_const(corpus_).tags().size()},
                    {"elapsed_ms", trace.root.elapsed_ms});
  build_trace_ = std::make_shared<const QueryTrace>(std::move(trace));
  built_ = true;
  return Status::OK();
}

Status FlexPath::SavePacked(const std::string& path) const {
  if (corpus_.size() == 0) {
    return Status::InvalidArgument("no documents added");
  }
  const auto start = std::chrono::steady_clock::now();
  storage::PackResult result;
  FLEXPATH_RETURN_IF_ERROR(
      storage::WritePackedCorpus(corpus_, tokenizer_opts_, path, &result));
  static Histogram* m_pack =
      MetricsRegistry::Global().histogram("storage.pack_ms");
  m_pack->Observe(MsSince(start));
  FLEXPATH_LOG_INFO("storage", "packed corpus written", {"path", path},
                    {"bytes", result.file_bytes},
                    {"documents", result.doc_count},
                    {"terms", result.term_count},
                    {"elapsed_ms", MsSince(start)});
  return Status::OK();
}

Status FlexPath::OpenPacked(const std::string& path,
                            storage::ReaderOptions reader_opts) {
  if (built_) return Status::InvalidArgument("Build() already called");
  if (corpus_.size() != 0) {
    return Status::InvalidArgument(
        "OpenPacked requires a fresh instance (no documents added)");
  }
  TraceCollector collector("open_packed");
  {
    Span span(&collector, "map_and_validate");
    Result<std::shared_ptr<storage::StorageReader>> reader =
        storage::StorageReader::Open(path, reader_opts);
    if (!reader.ok()) return reader.status();
    reader_ = std::move(reader).value();
  }
  // The file records the TokenizerOptions it was packed with; adopting
  // them keeps query-side term normalization identical to the index.
  tokenizer_opts_ = reader_->tokenizer_options();
  {
    Span span(&collector, "tags_and_corpus");
    FLEXPATH_RETURN_IF_ERROR(reader_->LoadTags(corpus_.tags()));
    corpus_.AttachBacking(reader_);
  }
  {
    Span span(&collector, "element_index");
    element_index_ = std::make_unique<ElementIndex>(
        &corpus_, hierarchy_.empty() ? nullptr : &hierarchy_, reader_);
  }
  {
    Span span(&collector, "document_stats");
    Result<DocumentStats::Tables> tables = reader_->LoadStatsTables();
    if (!tables.ok()) return tables.status();
    stats_ = std::make_unique<DocumentStats>(&corpus_,
                                             std::move(tables).value());
  }
  {
    Span span(&collector, "ir_engine");
    ir_ = std::make_unique<IrEngine>(&corpus_, tokenizer_opts_, reader_);
  }
  processor_ = std::make_unique<TopKProcessor>(
      element_index_.get(), stats_.get(), ir_.get(), &query_stats_);
  QueryTrace trace = collector.Finish();
  FLEXPATH_LOG_INFO("core", "packed corpus opened",
                    {"path", path},
                    {"documents", corpus_.size()},
                    {"elements", corpus_.TotalNodes()},
                    {"elapsed_ms", trace.root.elapsed_ms});
  build_trace_ = std::make_shared<const QueryTrace>(std::move(trace));
  built_ = true;
  return Status::OK();
}

Result<Tpq> FlexPath::Parse(std::string_view xpath) const {
  // Interning tags from queries is safe after Build(): unseen tags get
  // fresh ids with empty scan lists.
  return ParseXPath(xpath, const_cast<Corpus&>(corpus_).tags(),
                    tokenizer_opts_);
}

Result<std::vector<QueryAnswer>> FlexPath::Query(std::string_view xpath,
                                                 const TopKOptions& opts,
                                                 Algorithm algo) {
  Result<Tpq> q = Parse(xpath);
  if (!q.ok()) return q.status();
  Result<TopKResult> result = QueryTpq(*q, opts, algo, xpath);
  if (!result.ok()) return result.status();

  std::vector<QueryAnswer> out;
  out.reserve(result->answers.size());
  for (const RankedAnswer& a : result->answers) {
    QueryAnswer qa;
    qa.node = a.node;
    qa.score = a.score;
    qa.tag = std::as_const(corpus_).tags().Name(corpus_.node(a.node).tag);
    std::string text = corpus_.doc(a.node.doc).SubtreeText(a.node.node);
    if (text.size() > 120) {
      text.resize(117);
      text += "...";
    }
    qa.snippet = std::move(text);
    out.push_back(std::move(qa));
  }
  return out;
}

Result<TopKResult> FlexPath::QueryTpq(const Tpq& q, const TopKOptions& opts,
                                      Algorithm algo,
                                      std::string_view query_text) {
  if (!built_) return Status::InvalidArgument("call Build() first");
  const auto wall_start = std::chrono::steady_clock::now();
  Result<TopKResult> result = [&]() -> Result<TopKResult> {
    if (thesaurus_.size() > 0 && q.ContainsCount() > 0) {
      Tpq expanded = q;
      ExpandContains(&expanded);
      return processor_->Run(expanded, algo, opts);
    }
    return processor_->Run(q, algo, opts);
  }();
  if (result.ok() && result->trace != nullptr) {
    MutexLock lock(trace_mu_);
    last_query_trace_ = result->trace;
  }
  {
    MutexLock lock(varz_mu_);
    ++varz_queries_;
    if (opts.num_shards > 0) ++varz_sharded_queries_;
    if (!result.ok()) {
      ++varz_errors_;
    } else {
      varz_usage_.Add(result->usage);
    }
  }
  QueryLogWriter* log = query_log_.load(std::memory_order_relaxed);
  if (log != nullptr && result.ok()) {
    QueryLogRecord record;
    record.ts_unix_s =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    record.query = query_text.empty() ? Describe(q) : std::string(query_text);
    record.fingerprint = FingerprintTpq(q, std::as_const(corpus_).tags());
    record.algorithm = AlgorithmName(algo);
    record.scheme = RankSchemeName(opts.scheme);
    record.k = opts.k;
    record.threads = opts.num_threads;
    record.cache_tier = CacheTierName(opts.result_cache.tier);
    record.latency_ms = MsSince(wall_start);
    record.answers = result->answers.size();
    record.relaxations = result->relaxations_used;
    record.predicates_dropped = result->predicates_dropped;
    record.penalty = result->penalty_applied;
    record.budget_exhausted = result->budget_exhausted;
    record.answers_digest = AnswersDigest(result->answers);
    record.usage = result->usage;
    log->Append(record);
  }
  return result;
}

std::shared_ptr<const QueryTrace> FlexPath::last_query_trace() const {
  MutexLock lock(trace_mu_);
  return last_query_trace_;
}

std::string FlexPath::LastTraceChromeJson() const {
  std::shared_ptr<const QueryTrace> trace = last_query_trace();
  if (trace == nullptr) return "";
  return TraceToChromeJson(*trace);
}

std::string FlexPath::FlightRecorderJson() const {
  return FlightRecorder::Global().ToJson();
}

void FlexPath::SetQueryStatsOptions(const QueryStatsOptions& opts) {
  query_stats_.SetOptions(opts);
}

void FlexPath::SetQueryLog(QueryLogWriter* log) {
  query_log_.store(log, std::memory_order_relaxed);
}

std::string FlexPath::VarzJson() const {
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t sharded = 0;
  ResourceUsage usage;
  {
    MutexLock lock(varz_mu_);
    queries = varz_queries_;
    errors = varz_errors_;
    sharded = varz_sharded_queries_;
    usage = varz_usage_;
  }
  const uint64_t succeeded = queries - errors;
  std::string out = "{\"queries\":" + std::to_string(queries);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"sharded_queries\":" + std::to_string(sharded);
  out += ",\"usage_total\":{";
  bool first = true;
  usage.ForEach([&out, &first](const char* name, double value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += FormatDouble(value);
  });
  out += "},\"usage_mean\":{";
  first = true;
  usage.ForEach([&out, &first, succeeded](const char* name, double value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += FormatDouble(
        succeeded == 0 ? 0.0 : value / static_cast<double>(succeeded));
  });
  out += "}}";
  return out;
}

std::string FlexPath::BuildInfoJson() const {
  std::string out = "{\"library\":\"flexpath\"";
  out += ",\"cxx_standard\":" + std::to_string(__cplusplus);
#if defined(__VERSION__)
  out += ",\"compiler\":\"" + JsonEscape(__VERSION__) + '"';
#else
  out += ",\"compiler\":null";
#endif
#if defined(NDEBUG)
  out += ",\"assertions\":false";
#else
  out += ",\"assertions\":true";
#endif
  out += ",\"built\":";
  out += built_ ? "true" : "false";
  out += ",\"documents\":" + std::to_string(corpus_.size());
  out += ",\"elements\":" + std::to_string(corpus_.TotalNodes());
  out += ",\"distinct_tags\":" +
         std::to_string(std::as_const(corpus_).tags().size());
  return out + '}';
}

void FlexPath::ExpandContains(Tpq* q) const {
  for (VarId v : q->Vars()) {
    for (FtExpr& e : q->mutable_node(v).contains) {
      e = ExpandWithThesaurus(e, thesaurus_);
    }
  }
}

std::string FlexPath::Describe(const Tpq& q) const {
  return q.ToString(corpus_.tags());
}

AnalyzerContext FlexPath::analyzer_context() const {
  AnalyzerContext ctx;
  ctx.index = element_index_.get();
  ctx.stats = stats_.get();
  ctx.ir = ir_.get();
  ctx.dict = &corpus_.tags();
  return ctx;
}

AnalysisReport FlexPath::Analyze(const Tpq& q) const {
  AnalysisReport report = AnalyzeTpq(q, analyzer_context());
  LogReport(report, q.ToString(corpus_.tags()));
  return report;
}

Result<AnalysisReport> FlexPath::AnalyzeXPath(std::string_view xpath) const {
  Result<Tpq> q = Parse(xpath);
  if (!q.ok()) return q.status();
  return Analyze(*q);
}

Result<std::vector<PlanVerdict>> FlexPath::VerifySchedule(
    const Tpq& q) const {
  if (!built_) return Status::InvalidArgument("call Build() first");
  FLEXPATH_RETURN_IF_ERROR(q.Validate());
  PenaltyModel pm(q, stats_.get(), ir_.get(), Weights{});
  const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  return flexpath::VerifySchedule(q, schedule, analyzer_context());
}

Result<SchemeCertificate> FlexPath::CertifyScheme(RankScheme scheme) const {
  const SchemeCertificate* cert =
      SchemeRegistry::Global().Certificate(scheme);
  if (cert == nullptr) {
    return Status::NotFound(
        "rank scheme value " +
        std::to_string(static_cast<unsigned>(scheme)) +
        " is not registered; custom schemes must pass "
        "SchemeRegistry::Register certification first");
  }
  return *cert;
}

std::string FlexPath::SchemeCertificatesJson() {
  return SchemeRegistry::Global().CertificatesJson();
}

std::string FlexPath::CacheStatsJson() const {
  const ResultCache::Stats rc = ResultCache::Global().GetStats();
  std::string out = "{\"result_cache\":{";
  out += "\"hits\":" + std::to_string(rc.hits);
  out += ",\"misses\":" + std::to_string(rc.misses);
  out += ",\"insertions\":" + std::to_string(rc.insertions);
  out += ",\"evictions\":" + std::to_string(rc.evictions);
  out += ",\"entries\":" + std::to_string(rc.entries);
  out += ",\"bytes\":" + std::to_string(rc.bytes);
  out += ",\"budget\":" + std::to_string(rc.budget);
  out += "},\"ir_cache\":";
  if (ir_ != nullptr) {
    const IrEngine::CacheStats ir = ir_->GetCacheStats();
    out += "{\"evictions\":" + std::to_string(ir.evictions);
    out += ",\"entries\":" + std::to_string(ir.entries);
    out += ",\"bytes\":" + std::to_string(ir.bytes);
    out += ",\"budget\":" + std::to_string(ir.budget);
    out += '}';
  } else {
    out += "null";
  }
  out += ",\"merged_scan_cache\":";
  if (element_index_ != nullptr) {
    const ElementIndex::MergedCacheStats ms =
        element_index_->GetMergedCacheStats();
    out += "{\"hits\":" + std::to_string(ms.hits);
    out += ",\"misses\":" + std::to_string(ms.misses);
    out += ",\"evictions\":" + std::to_string(ms.evictions);
    out += ",\"entries\":" + std::to_string(ms.entries);
    out += ",\"bytes\":" + std::to_string(ms.bytes);
    out += ",\"budget\":" + std::to_string(ms.budget);
    out += '}';
  } else {
    out += "null";
  }
  // The storage buffer pools are a different animal from the result
  // caches above: they cache *decoded on-disk pages* (element tables,
  // posting lists), not query results, and exist only for packed
  // corpora.
  out += ",\"storage_buffer_pool\":";
  if (reader_ != nullptr) {
    auto pool_json = [](const storage::StorageReader::PoolStats& s) {
      std::string p = "{\"hits\":" + std::to_string(s.hits);
      p += ",\"misses\":" + std::to_string(s.misses);
      p += ",\"evictions\":" + std::to_string(s.evictions);
      p += ",\"entries\":" + std::to_string(s.entries);
      p += ",\"bytes\":" + std::to_string(s.bytes);
      p += ",\"budget\":" + std::to_string(s.budget);
      p += '}';
      return p;
    };
    out += "{\"element_tables\":" + pool_json(reader_->GetElemPoolStats());
    out += ",\"posting_lists\":" + pool_json(reader_->GetPostPoolStats());
    out += '}';
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

void FlexPath::SetSharedResultCacheBudget(size_t budget_bytes) {
  ResultCache::Global().SetBudget(budget_bytes);
}

std::string FlexPath::MetricsJson() const {
  return MetricsToJson(MetricsRegistry::Global().Snapshot());
}

std::string FlexPath::MetricsPrometheus() const {
  return MetricsToPrometheus(MetricsRegistry::Global().Snapshot());
}

}  // namespace flexpath
