#ifndef FLEXPATH_EXEC_NAIVE_EVALUATOR_H_
#define FLEXPATH_EXEC_NAIVE_EVALUATOR_H_

#include <vector>

#include "ir/engine.h"
#include "query/tpq.h"
#include "stats/element_index.h"
#include "xml/corpus.h"

namespace flexpath {

/// Reference evaluator with exact TPQ match semantics (Section 2.1): an
/// answer is a data node x such that some match f maps the distinguished
/// variable to x. Computed with downward match sets (bottom-up over the
/// pattern) followed by a top-down validity pass — no relaxation, no
/// scores. Used as the oracle in tests and as the baseline in the
/// join-vs-naive ablation benchmark.
///
/// `ir` may be null only if the query has no contains predicates.
std::vector<NodeRef> NaiveEvaluate(const ElementIndex& index, const Tpq& q,
                                   IrEngine* ir);

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_NAIVE_EVALUATOR_H_
