#include "exec/result_cache.h"

#include "common/hash.h"
#include "common/metrics.h"
#include "obs/flight_recorder.h"

namespace flexpath {

size_t CachedStepResult::ApproxBytes(const std::vector<ExecTuple>& tuples) {
  size_t bytes = sizeof(CachedStepResult) + tuples.size() * sizeof(ExecTuple);
  for (const ExecTuple& t : tuples) {
    bytes += t.bindings.capacity() * sizeof(NodeRef);
  }
  return bytes;
}

uint64_t StepCacheKey(uint64_t step_fingerprint, uint64_t corpus_generation,
                      uint8_t mode, uint8_t scheme, uint64_t prune_k) {
  uint64_t h = step_fingerprint;
  h = HashCombine(h, corpus_generation);
  h = HashCombine(h, static_cast<uint64_t>(mode));
  h = HashCombine(h, static_cast<uint64_t>(scheme));
  h = HashCombine(h, prune_k);
  return h;
}

ResultCache& ResultCache::Global() {
  static ResultCache* cache =
      new ResultCache(kDefaultSharedBudgetBytes, /*export_metrics=*/true);
  return *cache;
}

ResultCache::ResultCache(size_t budget_bytes, bool export_metrics)
    : lru_(budget_bytes), export_metrics_(export_metrics) {}

std::shared_ptr<const CachedStepResult> ResultCache::Get(uint64_t key) {
  MutexLock lock(mu_);
  std::shared_ptr<const CachedStepResult> entry = lru_.Get(key);
  if (entry != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  if (export_metrics_) ExportMetrics();
  return entry;
}

void ResultCache::Put(uint64_t key,
                      std::shared_ptr<const CachedStepResult> entry) {
  const size_t bytes = entry->bytes;
  MutexLock lock(mu_);
  const uint64_t evictions_before = lru_.evictions();
  const size_t bytes_before = lru_.bytes();
  bool inserted = false;
  if (lru_.Put(key, std::move(entry), bytes)) {
    ++insertions_;
    inserted = true;
  }
  const uint64_t evicted = lru_.evictions() - evictions_before;
  if (evicted > 0) {
    // Shared-tier evictions are capacity pressure worth seeing in a
    // post-mortem; run-tier churn is per-query noise.
    const size_t freed =
        bytes_before + (inserted ? bytes : 0) - lru_.bytes();
    if (export_metrics_) {
      FlightRecorder::Global().Record(FlightEventType::kCacheEvict, evicted,
                                      freed);
    }
  }
  if (export_metrics_) ExportMetrics();
}

void ResultCache::SetBudget(size_t budget_bytes) {
  MutexLock lock(mu_);
  lru_.SetBudget(budget_bytes);
  if (export_metrics_) ExportMetrics();
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.Clear();
  if (export_metrics_) ExportMetrics();
}

ResultCache::Stats ResultCache::GetStats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = lru_.evictions();
  s.entries = lru_.size();
  s.bytes = lru_.bytes();
  s.budget = lru_.budget();
  return s;
}

void ResultCache::ExportMetrics() {
  // Counters are monotone, so export the deltas by setting absolute
  // values is wrong for Counter — instead mirror as gauges for levels
  // and keep monotone counts via Inc-by-delta bookkeeping. Since this
  // runs under mu_, a static last-exported snapshot is safe.
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* m_hits = reg.counter("cache.hits");
  static Counter* m_misses = reg.counter("cache.misses");
  static Counter* m_insertions = reg.counter("cache.insertions");
  static Counter* m_evictions = reg.counter("cache.evictions");
  static Gauge* m_bytes = reg.gauge("cache.bytes");
  static Gauge* m_entries = reg.gauge("cache.entries");
  static uint64_t last_hits = 0, last_misses = 0, last_insertions = 0,
                  last_evictions = 0;
  m_hits->Inc(hits_ - last_hits);
  m_misses->Inc(misses_ - last_misses);
  m_insertions->Inc(insertions_ - last_insertions);
  m_evictions->Inc(lru_.evictions() - last_evictions);
  last_hits = hits_;
  last_misses = misses_;
  last_insertions = insertions_;
  last_evictions = lru_.evictions();
  m_bytes->Set(static_cast<int64_t>(lru_.bytes()));
  m_entries->Set(static_cast<int64_t>(lru_.size()));
}

}  // namespace flexpath
