#ifndef FLEXPATH_EXEC_EVALUATOR_H_
#define FLEXPATH_EXEC_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "common/resource_usage.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/plan.h"
#include "exec/result_cache.h"
#include "ir/engine.h"
#include "rank/score.h"
#include "shard/sharded_corpus.h"
#include "stats/element_index.h"

namespace flexpath {

/// Work counters exposed by the evaluator so benchmarks can report what
/// each algorithm actually did (passes over data, probes, sorting — the
/// quantities Section 6 attributes the DPO/SSO/Hybrid differences to).
struct ExecCounters {
  uint64_t plan_passes = 0;        ///< Full plan evaluations.
  uint64_t candidates_probed = 0;  ///< Scan-list entries examined.
  uint64_t tuples_created = 0;     ///< Intermediate tuples materialized.
  uint64_t tuples_pruned = 0;      ///< Tuples discarded by the threshold.
  uint64_t score_sorts = 0;        ///< Score-order sorts (SSO's weakness).
  uint64_t score_sorted_items = 0; ///< Total items passed through them.
  uint64_t buckets_peak = 0;       ///< Max live buckets (Hybrid).
  uint64_t rounds_pruned_static = 0;  ///< Rounds skipped by static analysis.
  uint64_t cache_step_hits = 0;    ///< Plan steps skipped via cached prefixes.
  uint64_t cache_step_misses = 0;  ///< Plan steps computed while caching.
  uint64_t tuples_excluded = 0;    ///< Tuples dropped: answer already known.

  /// How a field folds when counters from parallel chunks / shards /
  /// rounds are combined: totals sum, high-water marks max.
  enum class Agg : uint8_t { kSum, kMax };

  /// Must equal the number of fields above; the static_assert below
  /// pins sizeof to it, so adding a field without updating this (and
  /// VisitFields) fails the build instead of drifting silently.
  static constexpr size_t kFieldCount = 11;

  /// Reflection visitor: calls fn(name, field, agg) for every counter
  /// field of `self`, in declaration order — the single source of truth
  /// for the field list. Add(), ForEach() export (trace annotations,
  /// bench JSON lines, metrics) and the accounting-lint test all iterate
  /// through it, so a field listed here aggregates and exports
  /// automatically, everywhere.
  template <typename Self, typename Fn>
  static void VisitFields(Self& self, Fn&& fn) {
    fn("plan_passes", self.plan_passes, Agg::kSum);
    fn("candidates_probed", self.candidates_probed, Agg::kSum);
    fn("tuples_created", self.tuples_created, Agg::kSum);
    fn("tuples_pruned", self.tuples_pruned, Agg::kSum);
    fn("score_sorts", self.score_sorts, Agg::kSum);
    fn("score_sorted_items", self.score_sorted_items, Agg::kSum);
    fn("buckets_peak", self.buckets_peak, Agg::kMax);
    fn("rounds_pruned_static", self.rounds_pruned_static, Agg::kSum);
    fn("cache_step_hits", self.cache_step_hits, Agg::kSum);
    fn("cache_step_misses", self.cache_step_misses, Agg::kSum);
    fn("tuples_excluded", self.tuples_excluded, Agg::kSum);
  }

  /// Accumulates `other` into this through VisitFields: sums every
  /// kSum field, maxes every kMax field (buckets_peak). Every combine
  /// path — parallel chunk merge, shard union, round totals — goes
  /// through here, so a field cannot be aggregated in one path and
  /// dropped in another.
  void Add(const ExecCounters& other);

  /// Calls fn(name, value) for every field, in declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    VisitFields(*this, [&fn](const char* name, const uint64_t& value,
                             Agg /*agg*/) { fn(name, value); });
  }
};

// The accounting lint (see VisitFields): a new uint64_t field changes
// sizeof, failing this until kFieldCount — and, per the runtime check in
// Add(), the visitor — covers it.
static_assert(sizeof(ExecCounters) ==
                  ExecCounters::kFieldCount * sizeof(uint64_t),
              "ExecCounters field added/removed: update kFieldCount and "
              "VisitFields so aggregation and export stay complete");

/// Projects work counters into the ResourceUsage vocabulary (tuples
/// scanned/produced, cache hits/misses, rounds, and a byte estimate:
/// sizeof(Element) per scan probe plus a nominal tuple footprint per
/// materialization). cpu_ms is left at zero — counters carry no time;
/// callers add the CPU they measured. Deterministic: equal counters give
/// equal usage, so the differential byte-identity guarantees extend to
/// every usage field except cpu_ms.
ResourceUsage UsageFromCounters(const ExecCounters& c);

/// How the evaluator manages intermediate results (Section 5.2):
///  - kExact: evaluate the plan's required predicates only; no optional
///    predicates, no pruning. One DPO round.
///  - kSsoFlat: optional predicates encoded; intermediate tuples kept in
///    one list that is sorted by score to find the pruning threshold
///    after every join step: SSO, with the score/id sort tension.
///  - kHybridBuckets: tuples grouped into buckets by violation mask; each
///    bucket is score-homogeneous and stays in document order, so no
///    score sorting ever happens: Hybrid (Section 5.2.3).
enum class EvalMode : uint8_t {
  kExact,
  kSsoFlat,
  kHybridBuckets,
};

/// Sharded scatter-gather execution (DESIGN.md §15). When passed to
/// Evaluate, the tuple pipeline runs per document-range shard: each
/// shard seeds and joins against its own ElementIndex (NodeRefs stay
/// global, so no remapping), the pruning bound is computed globally
/// between steps, and a coordinator merges the per-shard answer lists —
/// truncated to the K' bound where sound — into the global order.
/// Answers and every work counter are byte-identical to the unsharded
/// run at any shard count; only cpu_ms (wall-truth) varies.
struct ShardEvalContext {
  /// The partition to execute over. Must be built from the same corpus
  /// the evaluator's index serves, at the same generation.
  const ShardedCorpus* shards = nullptr;
  /// Optional: receives one counter delta per shard for this pass —
  /// the shard-attributable work (probes, tuples, prunes). Phase-level
  /// counters (score_sorts, buckets_peak) are global quantities and are
  /// attributed per shard as the shard's own share, so they do not sum
  /// to the pass totals.
  std::vector<ExecCounters>* per_shard_counters = nullptr;
  /// Optional: receives every answer cut by per-shard K' truncation or
  /// by the coordinator's early termination — the test seam for the
  /// K'-bound invariant (no discarded answer may outrank the global
  /// k-th answer).
  std::vector<RankedAnswer>* discarded = nullptr;
};

/// Evaluates join plans over the tag index + IR engine.
class PlanEvaluator {
 public:
  /// `index` must outlive the evaluator; `ir` may be null when no query
  /// it sees has contains predicates.
  PlanEvaluator(const ElementIndex* index, IrEngine* ir)
      : index_(index), ir_(ir) {}

  /// Runs `plan`, returning answers deduplicated by distinguished node
  /// (best score kept), sorted best-first under `scheme`.
  ///   `k`             — pruning target; 0 disables threshold pruning.
  ///   `exact_penalty` — kExact only: the uniform structural penalty of
  ///                     this relaxation round (DPO scores all of a
  ///                     round's answers identically, Section 5.2.1).
  /// `counters` may be null. `trace`, when non-null, receives one span
  /// per pipeline stage (contains resolution, each join step, sorts,
  /// finalize) annotated with that stage's work.
  ///
  /// `pool`, when non-null, data-parallelizes the scan and every join
  /// step: sibling pattern branches make per-tuple probe work mutually
  /// independent, so the tuple stream splits into contiguous chunks,
  /// each worker extends its chunk against the shared immutable indexes
  /// with chunk-local counters, and outputs/counters merge in chunk
  /// order. The pruning bound is fixed per step before the fan-out, so
  /// answers, scores, and every counter are byte-identical to the serial
  /// run at any thread count (DESIGN.md §10).
  ///
  /// `cache`, when non-null, enables the sub-plan result cache (DESIGN.md
  /// §12): before executing, the evaluator probes the run-local and
  /// shared tiers for the deepest cached plan prefix (keyed by step
  /// fingerprint + corpus generation + mode/scheme/k) and resumes from
  /// it, storing every step it does compute. With cache->exclude set
  /// (incremental DPO), tuples whose distinguished binding was already
  /// answered are dropped at the step that binds it. Answers, penalties
  /// and relaxation metadata are byte-identical with or without the
  /// cache; only the work counters differ (cache_step_hits/misses,
  /// tuples_excluded, and the work the skipped steps never did).
  ///
  /// `usage`, when non-null, receives this pass's resource accounting:
  /// UsageFromCounters of the pass's counters, plus the thread-CPU time
  /// its pool fan-outs burned on *worker* threads. The calling thread's
  /// own CPU is deliberately excluded — the caller times itself, so the
  /// two add without double counting.
  ///
  /// `shard`, when non-null, runs the sharded scatter-gather path
  /// (DESIGN.md §15): per-shard seed/join/prune with a global threshold
  /// bound, per-shard finalize, K'-truncation and coordinator merge.
  /// Mutually exclusive with `cache` — the sub-plan cache keys whole
  /// tuple lists, not per-shard ones; callers disable it when sharding.
  std::vector<RankedAnswer> Evaluate(const JoinPlan& plan, EvalMode mode,
                                     size_t k, RankScheme scheme,
                                     double exact_penalty,
                                     ExecCounters* counters,
                                     TraceCollector* trace = nullptr,
                                     ThreadPool* pool = nullptr,
                                     const EvalCacheContext* cache = nullptr,
                                     ResourceUsage* usage = nullptr,
                                     const ShardEvalContext* shard = nullptr);

 private:
  const ElementIndex* index_;
  IrEngine* ir_;
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_EVALUATOR_H_
