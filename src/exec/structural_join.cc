#include "exec/structural_join.h"

namespace flexpath {

namespace {

/// Global-order key for merging.
struct Pos {
  DocId doc;
  uint32_t start;

  friend auto operator<=>(const Pos&, const Pos&) = default;
};

Pos PosOf(const Corpus& corpus, NodeRef ref) {
  return Pos{ref.doc, corpus.node(ref).start};
}

bool Contains(const Corpus& corpus, NodeRef anc, NodeRef desc) {
  if (anc.doc != desc.doc) return false;
  const Element& a = corpus.node(anc);
  const Element& d = corpus.node(desc);
  return a.start < d.start && d.end < a.end;
}

}  // namespace

std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only) {
  std::vector<JoinPair> out;
  std::vector<NodeRef> stack;
  size_t a = 0;
  size_t d = 0;
  while (d < descendants.size()) {
    const bool take_anc =
        a < ancestors.size() &&
        PosOf(corpus, ancestors[a]) < PosOf(corpus, descendants[d]);
    const NodeRef next = take_anc ? ancestors[a] : descendants[d];
    // Entries that do not contain `next` are finished.
    while (!stack.empty() && !Contains(corpus, stack.back(), next)) {
      stack.pop_back();
    }
    if (take_anc) {
      stack.push_back(next);
      ++a;
    } else {
      if (parent_only) {
        // Only the deepest open ancestor can be the parent.
        if (!stack.empty() &&
            corpus.node(stack.back()).level + 1 == corpus.node(next).level) {
          out.push_back(JoinPair{stack.back(), next});
        }
      } else {
        for (const NodeRef& anc : stack) {
          out.push_back(JoinPair{anc, next});
        }
      }
      ++d;
    }
  }
  return out;
}

std::vector<JoinPair> NestedLoopJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only) {
  std::vector<JoinPair> out;
  for (const NodeRef& d : descendants) {
    for (const NodeRef& anc : ancestors) {
      if (!Contains(corpus, anc, d)) continue;
      if (parent_only && !corpus.IsParent(anc, d)) continue;
      out.push_back(JoinPair{anc, d});
    }
  }
  return out;
}

}  // namespace flexpath
