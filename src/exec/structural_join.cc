#include "exec/structural_join.h"

namespace flexpath {

namespace {

/// Global-order key for merging.
struct Pos {
  DocId doc;
  uint32_t start;

  friend auto operator<=>(const Pos&, const Pos&) = default;
};

Pos PosOf(const Corpus& corpus, NodeRef ref) {
  return Pos{ref.doc, corpus.node(ref).start};
}

bool Contains(const Corpus& corpus, NodeRef anc, NodeRef desc) {
  if (anc.doc != desc.doc) return false;
  const Element& a = corpus.node(anc);
  const Element& d = corpus.node(desc);
  return a.start < d.start && d.end < a.end;
}

/// The stack-tree merge over descendants[d_begin, d_end). Each call
/// walks the ancestor list from the front, so a restart mid-list (a
/// parallel chunk) rebuilds exactly the stack the serial join would have
/// open at that point; pairs come out in (desc, anc) order either way.
void JoinRange(const Corpus& corpus, const std::vector<NodeRef>& ancestors,
               const std::vector<NodeRef>& descendants, size_t d_begin,
               size_t d_end, bool parent_only, std::vector<JoinPair>* out,
               ResourceUsage* usage) {
  // Parent-only joins emit at most one pair per descendant; ad joins
  // commonly emit about one (nesting of the same tag pair is shallow in
  // practice), so a one-per-descendant reservation avoids the early
  // doubling churn either way.
  out->reserve(out->size() + (d_end - d_begin));
  std::vector<NodeRef> stack;
  size_t a = 0;
  size_t d = d_begin;
  while (d < d_end) {
    const bool take_anc =
        a < ancestors.size() &&
        PosOf(corpus, ancestors[a]) < PosOf(corpus, descendants[d]);
    const NodeRef next = take_anc ? ancestors[a] : descendants[d];
    // Entries that do not contain `next` are finished.
    while (!stack.empty() && !Contains(corpus, stack.back(), next)) {
      stack.pop_back();
    }
    if (take_anc) {
      stack.push_back(next);
      ++a;
    } else {
      if (parent_only) {
        // Only the deepest open ancestor can be the parent.
        if (!stack.empty() &&
            corpus.node(stack.back()).level + 1 == corpus.node(next).level) {
          out->push_back(JoinPair{stack.back(), next});
        }
      } else {
        for (const NodeRef& anc : stack) {
          out->push_back(JoinPair{anc, next});
        }
      }
      ++d;
    }
  }
  if (usage != nullptr) {
    const uint64_t scanned = a + (d_end - d_begin);
    const uint64_t produced = out->size();
    usage->tuples_scanned += scanned;
    usage->tuples_produced += produced;
    usage->bytes_touched +=
        scanned * sizeof(Element) + produced * sizeof(JoinPair);
  }
}

}  // namespace

std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only, ResourceUsage* usage) {
  std::vector<JoinPair> out;
  JoinRange(corpus, ancestors, descendants, 0, descendants.size(),
            parent_only, &out, usage);
  return out;
}

std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only, ThreadPool* pool,
                                     ResourceUsage* usage) {
  const std::vector<std::pair<size_t, size_t>> ranges =
      ChunkRanges(pool, descendants.size(), /*grain=*/2048);
  if (ranges.size() <= 1) {
    return StructuralJoin(corpus, ancestors, descendants, parent_only, usage);
  }
  std::vector<std::vector<JoinPair>> outs(ranges.size());
  // Chunk-local accounting, folded after the join — workers never share a
  // ResourceUsage.
  std::vector<ResourceUsage> usages(usage != nullptr ? ranges.size() : 0);
  TaskGroup group(pool);
  for (size_t c = 0; c < ranges.size(); ++c) {
    group.Run([&, c] {
      JoinRange(corpus, ancestors, descendants, ranges[c].first,
                ranges[c].second, parent_only, &outs[c],
                usage != nullptr ? &usages[c] : nullptr);
    });
  }
  group.Wait();
  if (usage != nullptr) {
    for (const ResourceUsage& u : usages) usage->Add(u);
    usage->cpu_ms += group.WorkerCpuMs();
  }
  size_t total = 0;
  for (const std::vector<JoinPair>& o : outs) total += o.size();
  std::vector<JoinPair> out;
  out.reserve(total);
  for (std::vector<JoinPair>& o : outs) {
    out.insert(out.end(), o.begin(), o.end());
  }
  return out;
}

std::vector<JoinPair> NestedLoopJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only) {
  std::vector<JoinPair> out;
  for (const NodeRef& d : descendants) {
    for (const NodeRef& anc : ancestors) {
      if (!Contains(corpus, anc, d)) continue;
      if (parent_only && !corpus.IsParent(anc, d)) continue;
      out.push_back(JoinPair{anc, d});
    }
  }
  return out;
}

}  // namespace flexpath
