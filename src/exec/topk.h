#ifndef FLEXPATH_EXEC_TOPK_H_
#define FLEXPATH_EXEC_TOPK_H_

#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/resource_usage.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/evaluator.h"
#include "exec/selectivity.h"
#include "ir/engine.h"
#include "obs/query_stats.h"
#include "query/tpq.h"
#include "rank/score.h"
#include "relax/penalty.h"
#include "shard/sharded_corpus.h"
#include "stats/document_stats.h"
#include "stats/element_index.h"

namespace flexpath {

struct SchemeCertificate;  // analysis/score_algebra.h

/// The three top-K evaluation algorithms of Section 5.
enum class Algorithm : uint8_t {
  kDpo,     ///< Dynamic Penalty Order: evaluate, then relax one step at a
            ///  time while fewer than K answers (multiple plan passes).
  kSso,     ///< Static Selectivity Order: pick the relaxations to encode
            ///  up front from selectivity estimates; one plan, flat
            ///  intermediate lists, score sorts for pruning.
  kHybrid,  ///< SSO's plan with bucketized intermediates: score-
            ///  homogeneous buckets, no score sorting (Section 5.2.3).
};

const char* AlgorithmName(Algorithm algo);

/// Which tiers of the sub-plan result cache a run may use (DESIGN.md
/// §12). Off by default: caching never changes answers, penalties or
/// relaxation metadata, but it does change the work counters, and the
/// default keeps every counter-exact differential guarantee intact.
enum class CacheTier : uint8_t {
  kOff,     ///< No caching; every plan step executes from scratch.
  kRun,     ///< Run-local only: DPO round i+1 reuses round i's shared
            ///  plan prefix within one TopK call.
  kShared,  ///< Run-local + the process-wide LRU (ResultCache::Global()),
            ///  which persists across queries and makes repeats warm.
};

const char* CacheTierName(CacheTier tier);

struct ResultCacheOptions {
  CacheTier tier = CacheTier::kOff;
  /// Byte budget of the run-local tier (it dies with the run; the
  /// process-wide tier's budget belongs to ResultCache::Global()).
  size_t run_budget_bytes = size_t{64} << 20;
  /// DPO only: push the already-answered set into each round's
  /// evaluation so the round computes only its delta (the paper's
  /// "reusing prior results", Section 5.1). Answers are identical either
  /// way — the merge deduplicates by first round — so this is purely a
  /// work saver. Ignored when tier is kOff.
  bool incremental_dpo = true;
};

struct TopKOptions {
  size_t k = 10;
  /// The ranking scheme. Must be registered in SchemeRegistry (the three
  /// built-ins always are; custom values come from Register, which
  /// refuses uncertifiable algebras) — the run consults the scheme's
  /// SchemeCertificate for every optimization decision (threshold
  /// pruning, DPO stopping rule, shard K'-truncation, cache exactness;
  /// DESIGN.md §16), and an unregistered value is an InvalidArgument
  /// error up front.
  RankScheme scheme = RankScheme::kStructureFirst;
  Weights weights;
  /// When true, the run assembles a QueryTrace (returned via
  /// TopKResult::trace): one span per relaxation round / encoded pass,
  /// with plan-build, join-step and sort sub-spans. Off by default — the
  /// disabled path costs one pointer test per would-be span.
  bool collect_trace = false;
  /// Slow-query threshold in milliseconds. When >= 0, a run at least this
  /// slow is logged at WARN and appended (with its trace) to the
  /// processor's QueryStatsStore slow-query log; trace collection is
  /// forced on for such runs so the log can carry the span tree.
  /// Negative (the default) disables the slow-query log.
  double slow_query_ms = -1.0;
  /// When true (the default), each relaxation round is first checked
  /// against the corpus statistics (analysis::ProvablyEmptyReason): a
  /// round whose query provably has no answers — a tag occurring in
  /// zero elements, a contains expression nothing satisfies, or a
  /// pc/ad edge with zero such pairs — is skipped without building or
  /// running its plan. The proof is sound, so answers, penalties and
  /// relaxation metadata are identical with the option on or off; only
  /// the work counters differ. Skips are observable via
  /// TopKResult::rounds_pruned, the rounds_pruned_static counter, trace
  /// span annotations, and the query.rounds_pruned_static metric.
  bool static_prune = true;
  /// Worker threads for this run. 0 (the default) means hardware
  /// concurrency; 1 runs the fully serial path (no pool is ever
  /// touched). Parallelism never changes results: DPO evaluates
  /// relaxation rounds speculatively in waves and a deterministic merge
  /// replays the serial stopping rules in round order (discarding
  /// speculative rounds past the stopping point, counters included);
  /// within one plan, join steps fan out over tuple chunks whose outputs
  /// and counters merge in chunk order. Answers, penalties, counters and
  /// trace structure are identical at any thread count (DESIGN.md §10).
  size_t num_threads = 0;
  /// Sub-plan result cache knobs (DESIGN.md §12). Answers, penalties and
  /// relaxation metadata are byte-identical at every tier; work counters
  /// reflect the work actually done, so cache hits make them drop.
  ResultCacheOptions result_cache = {};
  /// Soft per-query CPU budget in thread-CPU milliseconds (coordinator +
  /// pool workers), <= 0 to disable (the default). Checked between DPO
  /// rounds / encoded passes — never inside one — so a run that trips it
  /// stops relaxing and returns what it has, flagged budget_exhausted.
  /// The budget is advisory ("soft"): one round always runs to
  /// completion, so the overshoot is bounded by a single round's cost.
  /// With both budgets disabled the execution path is unchanged —
  /// answers, counters and traces stay byte-identical to a build without
  /// budgets (the differential harness checks this).
  double max_cpu_ms = 0.0;
  /// Soft per-query tuple budget (ExecCounters::tuples_created), 0 to
  /// disable (the default). Same between-rounds semantics as max_cpu_ms.
  uint64_t max_tuples = 0;
  /// Document-range shards for scatter-gather execution (DESIGN.md §15).
  /// 0 (the default) runs the unsharded path; any value >= 1 partitions
  /// the corpus into that many contiguous ranges (num_shards = 1 is the
  /// degenerate one-shard partition and exercises the full scatter-
  /// gather machinery). Per-shard partitions are built lazily on first
  /// use and cached; a corpus mutated after that hard-errors rather than
  /// serving answers from a stale partition. Sharding never changes
  /// results: answers, scores, relaxation metadata and every work
  /// counter are byte-identical to the unsharded run at any shard count
  /// (the differential harness checks all of it). Sharding disables the
  /// sub-plan result cache — cache entries key whole-corpus tuple lists;
  /// a run that requested both surfaces the conflict as an FX310
  /// warning, the query.cache_disabled_sharded metric, and a trace
  /// annotation (see the README cache/shards tables).
  /// Shards compose with num_threads: the thread pool fans out over
  /// shards (and, unsharded, over tuple chunks), so threads are the
  /// workers and shards are the work units.
  size_t num_shards = 0;
};

struct TopKResult {
  std::vector<RankedAnswer> answers;  ///< At most k, best first.
  ExecCounters counters;
  size_t relaxations_used = 0;  ///< Schedule steps evaluated/encoded.
  /// Cumulative structural penalty of the deepest relaxation applied
  /// (DPO: last executed round; SSO/Hybrid: last encoded step).
  double penalty_applied = 0.0;
  /// Predicates relaxed away at that deepest relaxation.
  uint64_t predicates_dropped = 0;
  /// Relaxation rounds skipped because static analysis proved them
  /// empty (TopKOptions::static_prune). Also exported as the
  /// rounds_pruned_static execution counter.
  size_t rounds_pruned = 0;
  /// What the query consumed: thread-CPU ms across the coordinating
  /// thread and every pool worker that served the run, plus the
  /// counter-derived work figures (see UsageFromCounters). All fields
  /// except cpu_ms are deterministic functions of the counters, so the
  /// byte-identity guarantees cover them; cpu_ms is wall-truth and
  /// varies run to run.
  ResourceUsage usage;
  /// True when a soft budget (max_cpu_ms / max_tuples) stopped the run
  /// early; `answers` then holds the partial result accumulated so far.
  bool budget_exhausted = false;
  /// Execution trace; null unless TopKOptions::collect_trace was set.
  std::shared_ptr<const QueryTrace> trace;
  /// Per-shard accounting for sharded runs (empty otherwise): what each
  /// document-range shard contributed. The work figures cover only the
  /// rounds/passes the result kept — discarded speculative DPO rounds
  /// drop their per-shard counters exactly as they drop the global ones.
  struct ShardStats {
    DocId doc_begin = 0;
    DocId doc_end = 0;
    uint64_t candidates_probed = 0;
    uint64_t tuples_created = 0;
    size_t answers = 0;  ///< Final answers whose doc lies in this range.
  };
  std::vector<ShardStats> shards;
};

/// Runs top-K queries against one indexed corpus. The FleXPath
/// architecture of Figure 7: relaxation generation + XPath-engine
/// evaluation + IR-engine contains evaluation + combination.
class TopKProcessor {
 public:
  /// All dependencies must outlive the processor. `ir` may be null when
  /// queries carry no contains predicates; `query_stats` may be null to
  /// skip per-shape statistics collection.
  TopKProcessor(const ElementIndex* index, const DocumentStats* stats,
                IrEngine* ir, QueryStatsStore* query_stats = nullptr)
      : index_(index),
        stats_(stats),
        ir_(ir),
        query_stats_(query_stats),
        evaluator_(index, ir) {}

  /// Evaluates the top-K answers of `q` and all its relaxations
  /// (Definition 4) with the chosen algorithm. All three algorithms
  /// return the same answer set for the same query and K, up to ties;
  /// DPO assigns each relaxation round's answers a uniform structural
  /// score while SSO/Hybrid score per answer (Section 5.2.1).
  Result<TopKResult> Run(const Tpq& q, Algorithm algo,
                         const TopKOptions& opts);

  /// Run() with an explicit partition instead of opts.num_shards — the
  /// seam the shard-boundary fuzzer drives with arbitrary cut points.
  /// `shards` may be null (unsharded) and must be built over this
  /// processor's corpus at its current generation; a generation mismatch
  /// (the corpus grew after partitioning) is an InvalidArgument error.
  Result<TopKResult> RunWithShards(const Tpq& q, Algorithm algo,
                                   const TopKOptions& opts,
                                   const ShardedCorpus* shards);

 private:
  // `cert` is the certificate of opts.scheme (validated non-null by
  // RunWithShards): the stopping rules and cache decisions below read
  // their licenses from it instead of switching on the scheme by name.
  Result<TopKResult> RunDpo(const Tpq& q, const TopKOptions& opts,
                            const SchemeCertificate& cert,
                            const PenaltyModel& pm, TraceCollector* trace,
                            ThreadPool* pool, const ShardedCorpus* shards);
  Result<TopKResult> RunEncoded(const Tpq& q, const TopKOptions& opts,
                                const SchemeCertificate& cert,
                                const PenaltyModel& pm, EvalMode mode,
                                TraceCollector* trace, ThreadPool* pool,
                                const ShardedCorpus* shards);

  /// The cached n-shard partition, built (and reconciled against the
  /// full-corpus statistics) on first use. Fails with InvalidArgument
  /// when the corpus has grown past the partition's generation — the
  /// processor's global index is equally stale then, so rebalancing
  /// would only hide the real error.
  Result<const ShardedCorpus*> ShardsFor(size_t num_shards);

  /// The pool serving `opts.num_threads`, or null for a serial run.
  /// Pools are created on first use and cached per size for the
  /// processor's lifetime, so concurrent Run() calls (even with different
  /// thread counts) share pools safely and never race a pool teardown.
  ThreadPool* PoolFor(const TopKOptions& opts);

  const ElementIndex* index_;
  const DocumentStats* stats_;
  IrEngine* ir_;
  QueryStatsStore* query_stats_;
  PlanEvaluator evaluator_;
  Mutex pools_mu_;
  std::map<size_t, std::unique_ptr<ThreadPool>> pools_ GUARDED_BY(pools_mu_);
  Mutex shards_mu_;
  std::map<size_t, std::unique_ptr<ShardedCorpus>> shards_
      GUARDED_BY(shards_mu_);
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_TOPK_H_
