#ifndef FLEXPATH_EXEC_PLAN_H_
#define FLEXPATH_EXEC_PLAN_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "query/logical.h"
#include "query/tpq.h"
#include "rank/score.h"
#include "relax/penalty.h"

namespace flexpath {

/// One predicate evaluated at a plan step. Required predicates filter;
/// optional predicates (the encoded relaxations, Section 5.2.1/Figure 8:
/// "c(a,b) or if not c(a,b) then d(a,b)") are checked and, when violated,
/// contribute their penalty and set a bit in the tuple's violation mask.
struct PlanPredicate {
  Predicate pred;
  bool optional = false;
  double penalty = 0.0;  ///< π(pred); meaningful when optional.
  int mask_bit = -1;     ///< Violation-mask bit; optional predicates only.
};

/// One step of the left-deep plan: bind one query variable by probing the
/// tag's element list inside the anchor binding's interval.
struct PlanStep {
  VarId var = kInvalidVar;
  TagId tag = kInvalidTag;
  int anchor_step = -1;  ///< Earlier step whose binding bounds the probe;
                         ///  -1 for the first step (scan the whole list).
  bool anchor_parent_only = false;  ///< Required pc edge: filter by level.
  bool nullable = false;  ///< Every predicate involving var is optional,
                          ///  so the variable may stay unbound (leaf
                          ///  deletion encoded in the plan).
  std::vector<PlanPredicate> preds;   ///< Predicates decidable at this step.
  std::vector<AttrPred> attr_preds;   ///< Value predicates (always filter).
};

/// A left-deep join plan over the original query's variables with a set
/// of relaxations encoded as optional predicates (the SSO/Hybrid plan
/// form, Section 5.2). Build once per (query, encoded-drop-set); evaluate
/// with PlanEvaluator.
class JoinPlan {
 public:
  /// Builds the plan.
  ///   `original` — the user query (all variables; defines scoring).
  ///   `relaxed`  — the most relaxed query in the encoded chain; its
  ///                logical form gives the *required* predicates. Pass
  ///                `original` itself to encode no relaxation.
  ///   `dropped`  — cumulative dropped closure predicates (must equal
  ///                Closure(original) − Closure(relaxed)).
  /// Fails if more than 64 droppable predicates are encoded (mask width).
  static Result<JoinPlan> Build(const Tpq& original, const Tpq& relaxed,
                                const std::set<Predicate>& dropped,
                                const PenaltyModel& pm, const Weights& w);

  const Tpq& query() const { return original_; }
  const std::vector<PlanStep>& steps() const { return steps_; }
  int distinguished_step() const { return distinguished_step_; }

  /// Σ w over the original query's structural predicates.
  double base_score() const { return base_score_; }

  /// Σ π over the optional predicates whose bits are set in `mask`.
  double PenaltyOfMask(uint64_t mask) const;

  /// Σ π over optional predicates evaluated at steps > `step` (the
  /// maximum further score loss of a tuple alive after `step` — the
  /// complement of the paper's maxScoreGrowth threshold).
  double MaxRemainingPenalty(size_t step) const;

  /// Total keyword weight (Σ w over original contains predicates): the
  /// upper bound of any answer's keyword score, the `m` of the combined-
  /// scheme pruning bound in Section 5.1.
  double max_keyword_score() const { return max_keyword_score_; }

  size_t num_mask_bits() const { return bit_penalties_.size(); }

  /// Keyword-scoring info: for each contains predicate of the original
  /// query, the chain of plan steps from its variable up to the root.
  /// The effective score is taken at the deepest bound, satisfying step.
  struct ContainsChain {
    FtExpr expr = FtExpr::Term("");
    double weight = 1.0;
    std::vector<int> chain_steps;  ///< Step indexes, deepest first.
  };
  const std::vector<ContainsChain>& contains_chains() const {
    return contains_chains_;
  }

  /// Steps whose bindings still matter after step `s` completes: steps
  /// referenced by a predicate of a later step, by any keyword-scoring
  /// chain, or the distinguished step. Two tuples that agree on these
  /// bindings have identical futures, so only the lowest-penalty one
  /// needs to survive — this exact dominance rule is what keeps
  /// independent pattern branches from multiplying intermediate tuples.
  const std::vector<int>& LiveSteps(size_t s) const {
    return live_after_step_[s];
  }

  /// Canonical fingerprint of the plan prefix [0..s]: a chained hash over
  /// every plan-side input that determines the tuple set alive after step
  /// s — each prefix step's tag, anchor, axis, nullability, attribute and
  /// required/optional predicates (with penalties and mask bits), its
  /// live set (dominance pruning input), and the plan-level scoring
  /// fields the pruning bound reads. Because the hash chains, two plans
  /// that agree on fingerprint(s) agree on the whole prefix — which is
  /// what lets consecutive DPO rounds (same step order, by construction
  /// over the original query's variables) share cached prefixes. Corpus
  /// state, eval mode, scheme and k are *not* included here; the result
  /// cache folds them into its key (see StepCacheKey).
  uint64_t step_fingerprint(size_t s) const { return step_fp_[s]; }

  /// Fingerprint of the whole plan (the last step's prefix fingerprint).
  uint64_t plan_fingerprint() const { return step_fp_.back(); }

 private:
  JoinPlan() = default;

  Tpq original_;
  std::vector<PlanStep> steps_;
  int distinguished_step_ = 0;
  double base_score_ = 0.0;
  double max_keyword_score_ = 0.0;
  std::vector<double> bit_penalties_;          ///< π per mask bit.
  std::vector<double> remaining_after_step_;   ///< See MaxRemainingPenalty.
  std::vector<ContainsChain> contains_chains_;
  std::vector<std::vector<int>> live_after_step_;  ///< See LiveSteps.
  std::vector<uint64_t> step_fp_;  ///< See step_fingerprint.
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_PLAN_H_
