#include "exec/topk.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <unordered_set>

#include "analysis/analyzer.h"
#include "analysis/score_algebra.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "rank/scheme_registry.h"
#include "relax/schedule.h"

namespace flexpath {

namespace {

void SortByScheme(std::vector<RankedAnswer>* answers, RankScheme scheme) {
  auto before = [&](const RankedAnswer& a, const RankedAnswer& b) {
    if (RanksBefore(a.score, b.score, scheme)) return true;
    if (RanksBefore(b.score, a.score, scheme)) return false;
    return a.node < b.node;
  };
  // The DPO merge appends rounds in non-increasing score order and each
  // round arrives sorted, so the list is usually already in final order.
  // Answer nodes are unique (the seen-set dedups), making `before` a
  // strict total order — is_sorted therefore implies the exact order the
  // sort would produce, and skipping it is byte-identical (guarded by
  // the differential harness).
  if (std::is_sorted(answers->begin(), answers->end(), before)) return;
  std::sort(answers->begin(), answers->end(), before);
}

/// Attaches one round's counter delta to its span, one annotation per
/// field ("counters.<name>"), so traces carry the same quantities the
/// result-level ExecCounters aggregate.
void AnnotateCounters(Span* span, const ExecCounters& delta) {
  if (!span->active()) return;
  delta.ForEach([&](const char* name, uint64_t value) {
    span->Annotate(std::string("counters.") + name, value);
  });
}

/// Same, for a raw span — the worker-collector path, where the round
/// span is a collector root rather than a Span RAII handle.
void AnnotateCounters(TraceSpan* span, const ExecCounters& delta) {
  delta.ForEach([&](const char* name, uint64_t value) {
    span->Annotate(std::string("counters.") + name, value);
  });
}

/// Attaches a resource-usage breakdown as "usage.<field>" annotations —
/// what the stage consumed, next to the counters saying what it did.
void AnnotateUsage(Span* span, const ResourceUsage& usage) {
  if (!span->active()) return;
  usage.ForEach([&](const char* name, double value) {
    span->Annotate(std::string("usage.") + name, value);
  });
}

void AnnotateUsage(TraceSpan* span, const ResourceUsage& usage) {
  usage.ForEach([&](const char* name, double value) {
    span->Annotate(std::string("usage.") + name, value);
  });
}

/// One DPO round evaluated speculatively by a wave worker. Everything a
/// round produces is buffered here; the merge decides — in round order —
/// whether to accept it into the result or discard it wholesale
/// (speculation past the serial stopping point contributes nothing, not
/// even counters).
struct RoundOutput {
  Status status;  ///< Plan-build failure, if any.
  std::vector<RankedAnswer> answers;
  ExecCounters counters;
  /// The round's full resource bill: counter-derived work plus every
  /// thread-CPU millisecond it burned — the evaluating thread's own and
  /// any nested pool fan-out's.
  ResourceUsage usage;
  /// The share of usage.cpu_ms spent on threads *other than* the one
  /// that called eval_round. The caller needs the split to avoid double
  /// counting: an inline round's own CPU is already inside the
  /// coordinator's timer, a wave-worker round's is not.
  double off_thread_cpu_ms = 0.0;
  TraceSpan span;         ///< The round's finished span subtree.
  bool has_span = false;  ///< Set on the worker-collector path only.
  bool pruned = false;    ///< Skipped: static analysis proved it empty.
  std::string prune_reason;
  /// Sharded runs: the round's per-shard counter deltas. Buffered with
  /// the rest of the round so a discarded speculative round discards its
  /// shard attribution too.
  std::vector<ExecCounters> shard_counters;
};

/// Fills TopKResult::shards from the per-shard counter totals plus the
/// final answer list (each answer charged to the shard owning its doc).
void FillShardStats(const ShardedCorpus& sc,
                    const std::vector<ExecCounters>& per_shard,
                    TopKResult* result) {
  result->shards.resize(sc.num_shards());
  for (size_t i = 0; i < sc.num_shards(); ++i) {
    TopKResult::ShardStats& s = result->shards[i];
    s.doc_begin = sc.range(i).doc_begin;
    s.doc_end = sc.range(i).doc_end;
    s.candidates_probed = per_shard[i].candidates_probed;
    s.tuples_created = per_shard[i].tuples_created;
  }
  for (const RankedAnswer& a : result->answers) {
    const size_t owner = sc.ShardOf(a.node.doc);
    if (owner < result->shards.size()) ++result->shards[owner].answers;
  }
}

}  // namespace

const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kDpo:
      return "DPO";
    case Algorithm::kSso:
      return "SSO";
    case Algorithm::kHybrid:
      return "Hybrid";
  }
  return "unknown";
}

const char* CacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::kOff:
      return "off";
    case CacheTier::kRun:
      return "run";
    case CacheTier::kShared:
      return "shared";
  }
  return "unknown";
}

Result<TopKResult> TopKProcessor::Run(const Tpq& q, Algorithm algo,
                                      const TopKOptions& opts) {
  if (opts.num_shards == 0) return RunWithShards(q, algo, opts, nullptr);
  Result<const ShardedCorpus*> shards = ShardsFor(opts.num_shards);
  if (!shards.ok()) return shards.status();
  return RunWithShards(q, algo, opts, *shards);
}

Result<TopKResult> TopKProcessor::RunWithShards(const Tpq& q, Algorithm algo,
                                                const TopKOptions& opts,
                                                const ShardedCorpus* shards) {
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  if (shards != nullptr) {
    if (shards->num_shards() == 0) {
      return Status::InvalidArgument("shard partition has no shards");
    }
    if (shards->source_generation() != index_->corpus().generation()) {
      return Status::InvalidArgument(
          "shard partition is stale: built at corpus generation " +
          std::to_string(shards->source_generation()) +
          " but the corpus is now at generation " +
          std::to_string(index_->corpus().generation()) +
          "; documents were added after sharding — rebuild the index and "
          "the shard partition before querying");
    }
  }
  FLEXPATH_RETURN_IF_ERROR(q.Validate());
  if (q.ContainsCount() > 0 && ir_ == nullptr) {
    return Status::InvalidArgument(
        "query has contains predicates but no IR engine is attached");
  }
  // Every optimization below runs on the scheme's certificate; a value
  // the registry has never seen has no certificate and cannot execute.
  // (Certified custom schemes come from SchemeRegistry::Register, which
  // refuses algebras the certifier refutes — DESIGN.md §16.)
  const SchemeCertificate* cert =
      SchemeRegistry::Global().Certificate(opts.scheme);
  if (cert == nullptr) {
    return Status::InvalidArgument(
        "unknown rank scheme value " +
        std::to_string(static_cast<unsigned>(opts.scheme)) +
        "; register custom schemes through SchemeRegistry::Register so "
        "the certifier can prove the optimizations sound");
  }

  const auto start = std::chrono::steady_clock::now();
  // Coordinator CPU; pool-worker CPU is measured at task boundaries and
  // folded in below, so the sum never double-counts a thread.
  const ThreadCpuTimer query_cpu;
  const uint64_t fingerprint = FingerprintTpq(q, index_->corpus().tags());
  FlightRecorder::Global().Record(FlightEventType::kQueryStart, fingerprint,
                                  opts.k);
  std::optional<TraceCollector> collector;
  // A slow-query threshold forces collection so the slow log can carry
  // the span tree of the offending run.
  if (opts.collect_trace || opts.slow_query_ms >= 0.0) {
    collector.emplace("query");
    TraceSpan* root = collector->current();
    root->Annotate("algorithm", std::string(AlgorithmName(algo)));
    root->Annotate("k", static_cast<uint64_t>(opts.k));
    root->Annotate("scheme", std::string(RankSchemeName(opts.scheme)));
    root->Annotate("query", q.ToString(index_->corpus().tags()));
  }
  TraceCollector* trace = collector.has_value() ? &*collector : nullptr;
  ThreadPool* pool = PoolFor(opts);
  if (trace != nullptr) {
    collector->current()->Annotate(
        "threads", static_cast<uint64_t>(pool != nullptr ? pool->size() : 1));
    collector->current()->Annotate(
        "shards",
        static_cast<uint64_t>(shards != nullptr ? shards->num_shards() : 0));
  }
  // A sharded run bypasses the sub-plan result cache (entries key
  // whole-corpus tuple lists — see RunDpo/RunEncoded). The downgrade
  // used to be silent; surface it as the FX310 advisory, a counter, and
  // a trace annotation so "why is my cache cold" has an answer.
  if (shards != nullptr && opts.result_cache.tier != CacheTier::kOff) {
    static Counter* m_cache_off_sharded =
        MetricsRegistry::Global().counter("query.cache_disabled_sharded");
    m_cache_off_sharded->Inc();
    FLEXPATH_LOG_WARN(
        "exec", "result cache disabled for sharded run",
        {"code", std::string(kDiagCacheDisabledSharded)},
        {"tier_requested", CacheTierName(opts.result_cache.tier)},
        {"shards", static_cast<uint64_t>(shards->num_shards())});
    if (trace != nullptr) {
      collector->current()->Annotate("cache_disabled_sharded", uint64_t{1});
    }
  }

  Result<TopKResult> result = [&]() -> Result<TopKResult> {
    Span pm_span(trace, "penalty_model");
    PenaltyModel pm(q, stats_, ir_, opts.weights);
    pm_span.Close();
    switch (algo) {
      case Algorithm::kDpo:
        return RunDpo(q, opts, *cert, pm, trace, pool, shards);
      case Algorithm::kSso:
        return RunEncoded(q, opts, *cert, pm, EvalMode::kSsoFlat, trace, pool,
                          shards);
      case Algorithm::kHybrid:
        return RunEncoded(q, opts, *cert, pm, EvalMode::kHybridBuckets, trace,
                          pool, shards);
    }
    return Status::InvalidArgument("unknown algorithm");
  }();

  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* m_queries = reg.counter("query.count");
  static Counter* m_errors = reg.counter("query.errors");
  static Counter* m_sharded = reg.counter("query.sharded");
  static Counter* m_pruned = reg.counter("query.rounds_pruned_static");
  static Counter* m_budget = reg.counter("query.budget_exhausted");
  static Histogram* m_cpu = reg.histogram("query.cpu_ms");
  static Histogram* m_latency[3] = {
      reg.histogram("query.latency_ms.dpo"),
      reg.histogram("query.latency_ms.sso"),
      reg.histogram("query.latency_ms.hybrid"),
  };
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  m_queries->Inc();
  if (shards != nullptr) m_sharded->Inc();
  if (!result.ok()) {
    m_errors->Inc();
  } else {
    // Per-shard scatter-gather attribution, under stable names so /varz
    // and /metrics scrapes can chart shard balance over time. Looked up
    // by name per sharded query — the registry interns them, and
    // sharded queries are rare enough that the lookup is noise.
    for (size_t i = 0; i < result->shards.size(); ++i) {
      const TopKResult::ShardStats& s = result->shards[i];
      const std::string prefix = "shard." + std::to_string(i) + ".";
      reg.counter(prefix + "candidates_probed")->Inc(s.candidates_probed);
      reg.counter(prefix + "tuples_created")->Inc(s.tuples_created);
      reg.counter(prefix + "answers")->Inc(s.answers);
    }
    // The algorithm left only the off-coordinator CPU in usage.cpu_ms;
    // every other field is recomputed from the merged counters so the
    // deterministic figures come from exactly the work the result kept.
    const double worker_cpu_ms = result->usage.cpu_ms;
    result->usage = UsageFromCounters(result->counters);
    result->usage.cpu_ms = worker_cpu_ms + query_cpu.ElapsedMs();
    m_latency[static_cast<size_t>(algo)]->Observe(elapsed_ms);
    m_cpu->Observe(result->usage.cpu_ms);
    if (result->rounds_pruned > 0) m_pruned->Inc(result->rounds_pruned);
    if (result->budget_exhausted) m_budget->Inc();
  }
  FlightRecorder::Global().Record(
      FlightEventType::kQueryEnd, fingerprint,
      result.ok() ? result->answers.size() : 0, elapsed_ms);

  std::shared_ptr<const QueryTrace> finished;
  if (trace != nullptr) {
    TraceSpan* root = collector->current();
    if (result.ok()) {
      root->Annotate("relaxations_used",
                     static_cast<uint64_t>(result->relaxations_used));
      root->Annotate("answers",
                     static_cast<uint64_t>(result->answers.size()));
      AnnotateUsage(root, result->usage);
      if (result->budget_exhausted) {
        root->Annotate("budget_exhausted", uint64_t{1});
      }
    }
    finished = std::make_shared<const QueryTrace>(collector->Finish());
    if (result.ok() && opts.collect_trace) result->trace = finished;
  }

  const bool slow =
      opts.slow_query_ms >= 0.0 && elapsed_ms >= opts.slow_query_ms;
  const bool log_debug =
      Logger::Global().Enabled(LogLevel::kDebug, "exec");
  if (query_stats_ != nullptr || slow || log_debug) {
    const TagDict& dict = index_->corpus().tags();
    QueryExecution exec;
    exec.fingerprint = fingerprint;
    exec.query = q.ToString(dict);
    exec.algorithm = AlgorithmName(algo);
    exec.scheme = RankSchemeName(opts.scheme);
    exec.k = opts.k;
    exec.latency_ms = elapsed_ms;
    if (result.ok()) {
      exec.relaxations = result->relaxations_used;
      exec.predicates_dropped = result->predicates_dropped;
      exec.penalty = result->penalty_applied;
      exec.answers = result->answers.size();
      exec.usage = result->usage;
      exec.budget_exhausted = result->budget_exhausted;
    } else {
      exec.error = true;
    }
    if (query_stats_ != nullptr) {
      query_stats_->Record(exec);
      if (slow) query_stats_->RecordSlow(exec, opts.slow_query_ms, finished);
    }
    if (slow) {
      FlightRecorder::Global().Record(FlightEventType::kSlowQuery,
                                      fingerprint, exec.answers, elapsed_ms);
      FLEXPATH_LOG_WARN(
          "exec", "slow query",
          {"fingerprint", FingerprintHex(exec.fingerprint)},
          {"query", exec.query}, {"algorithm", exec.algorithm},
          {"latency_ms", exec.latency_ms},
          {"threshold_ms", opts.slow_query_ms},
          {"relaxations", exec.relaxations}, {"answers", exec.answers});
    } else if (log_debug) {
      FLEXPATH_LOG_DEBUG(
          "exec", exec.error ? "query failed" : "query executed",
          {"fingerprint", FingerprintHex(exec.fingerprint)},
          {"query", exec.query}, {"algorithm", exec.algorithm},
          {"latency_ms", exec.latency_ms},
          {"relaxations", exec.relaxations}, {"answers", exec.answers});
    }
  }
  return result;
}

Result<TopKResult> TopKProcessor::RunDpo(const Tpq& q,
                                         const TopKOptions& opts,
                                         const SchemeCertificate& cert,
                                         const PenaltyModel& pm,
                                         TraceCollector* trace,
                                         ThreadPool* pool,
                                         const ShardedCorpus* shards) {
  TopKResult result;
  // Sharded scatter-gather attribution: accumulated round by round, in
  // merge order, so discarded speculative rounds contribute nothing.
  std::vector<ExecCounters> shard_totals(
      shards != nullptr ? shards->num_shards() : 0);
  // CPU accounting for the soft budget: this thread's time plus whatever
  // landed on pool workers so far. The budgeted path reads the clock
  // between rounds only; with no budget set, nothing below branches on
  // these, keeping the run byte-identical to a budget-free build.
  const ThreadCpuTimer algo_cpu;
  double off_thread_cpu_ms = 0.0;
  const bool budgeted = opts.max_cpu_ms > 0.0 || opts.max_tuples > 0;
  auto budget_spent = [&]() -> bool {
    if (opts.max_tuples > 0 &&
        result.counters.tuples_created >= opts.max_tuples) {
      return true;
    }
    return opts.max_cpu_ms > 0.0 &&
           algo_cpu.ElapsedMs() + off_thread_cpu_ms >= opts.max_cpu_ms;
  };
  auto trip_budget = [&] {
    result.budget_exhausted = true;
    FlightRecorder::Global().Record(
        FlightEventType::kBudgetTrip, result.counters.tuples_created,
        opts.max_tuples, algo_cpu.ElapsedMs() + off_thread_cpu_ms);
  };

  Span schedule_span(trace, "build_schedule");
  const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  schedule_span.Annotate("entries", static_cast<uint64_t>(schedule.size()));
  schedule_span.Close();

  // Stopping rules (Section 5.1), read from the scheme's certificate:
  // kAtK stops as soon as K answers exist (structure-first: relaxing
  // only lowers the primary key); kPenaltyMargin keeps going until the
  // best achievable key falls below (K-th round's score − margin),
  // margin = stop_margin_factor × m with m the total contains weight
  // (combined: factor 1); kExhaustive evaluates every relaxation
  // (keyword-first: no provable bound on future rounds).
  std::unordered_set<NodeRef, NodeRefHash> seen;
  double stop_below = -std::numeric_limits<double>::infinity();
  const double base = BaseStructuralScore(q, opts.weights);
  const double m = [&] {
    double total = 0.0;
    for (VarId v : q.Vars()) {
      for (const FtExpr& e : q.node(v).contains) {
        total += opts.weights.Of(Predicate::Contains(v, e));
      }
    }
    return total;
  }();

  auto round_penalty = [&](size_t round) {
    return round == 0 ? 0.0 : schedule[round - 1].cumulative_penalty;
  };

  // Sub-plan result cache (DESIGN.md §12). The run tier lives for this
  // call; consecutive rounds differ by one dropped predicate, so round
  // i+1's plan shares a fingerprint-identical prefix with round i and
  // resumes from it. With incremental_dpo the merged answer set is pushed
  // into each round's evaluation as an exclusion set — safe to read from
  // wave workers because merges (the only writes) happen strictly after
  // the wave's Wait().
  std::optional<ResultCache> run_cache;
  EvalCacheContext cache_ctx;
  const EvalCacheContext* cache = nullptr;
  // Sharded runs skip the cache entirely: entries key whole-corpus tuple
  // lists, which a per-shard pipeline neither produces nor consumes
  // (surfaced as FX310 by RunWithShards). Cache exactness itself is a
  // certified property (FX304): a scheme whose ranking is not provably a
  // pure function of (ss, ks) may not reuse kExact entries, so it runs
  // uncached rather than approximately.
  if (opts.result_cache.tier != CacheTier::kOff && shards == nullptr &&
      cert.cache_exact.holds) {
    run_cache.emplace(opts.result_cache.run_budget_bytes);
    cache_ctx.run = &*run_cache;
    if (opts.result_cache.tier == CacheTier::kShared) {
      cache_ctx.shared = &ResultCache::Global();
    }
    cache_ctx.corpus_generation = index_->corpus().generation();
    if (opts.result_cache.incremental_dpo) cache_ctx.exclude = &seen;
    cache = &cache_ctx;
  }

  // Annotates a round span (RAII or collector-root) with the round's
  // identity — shared by the serial and worker paths so both produce the
  // same span, in the same annotation order.
  auto annotate_round = [&](auto* span, size_t round) {
    span->Annotate("round", static_cast<uint64_t>(round));
    span->Annotate("penalty", round_penalty(round));
    if (round > 0) {
      const ScheduleEntry& entry = schedule[round - 1];
      span->Annotate("op", entry.op.ToString());
      span->Annotate("step_penalty", entry.step_penalty);
      std::vector<std::string> dropped;
      dropped.reserve(entry.dropped.size());
      for (const Predicate& p : entry.dropped) {
        dropped.push_back(p.ToString(&index_->corpus().tags()));
      }
      span->Annotate("dropped", Join(dropped, ", "));
    }
  };

  AnalyzerContext actx;
  actx.index = index_;
  actx.stats = stats_;
  actx.ir = ir_;
  actx.dict = &index_->corpus().tags();

  // Builds and evaluates one round's plan. `evpool` parallelizes within
  // the plan — non-null only when the round itself runs on the calling
  // thread (a worker-side nested fan-out would run inline anyway).
  // With static_prune, a round the corpus statistics prove empty is
  // answered without a plan: the proof is sound, so the round's output
  // (no answers) is exactly what evaluation would have produced, and
  // the merge bookkeeping below still runs for it — the result differs
  // from the unpruned run only in work counters.
  auto eval_round = [&](size_t round, TraceCollector* rc, ThreadPool* evpool,
                        RoundOutput* out) {
    // Everything this round costs, starting now: the evaluating thread's
    // CPU comes from this timer; nested pool fan-outs report theirs
    // through the usage out-param below.
    const ThreadCpuTimer round_cpu;
    const Tpq& relaxed = round == 0 ? q : schedule[round - 1].relaxed;
    if (opts.static_prune) {
      if (std::optional<std::string> reason =
              ProvablyEmptyReason(relaxed, actx)) {
        out->pruned = true;
        out->prune_reason = *std::move(reason);
        out->counters.rounds_pruned_static = 1;
        FlightRecorder::Global().Record(FlightEventType::kRoundSkip, round,
                                        0, round_penalty(round));
        out->usage = UsageFromCounters(out->counters);
        out->usage.cpu_ms = round_cpu.ElapsedMs();
        return;
      }
    }
    FlightRecorder::Global().Record(FlightEventType::kRoundStart, round, 0,
                                    round_penalty(round));
    Span build_span(rc, "plan_build");
    Result<JoinPlan> plan = JoinPlan::Build(q, relaxed, {}, pm, opts.weights);
    build_span.Close();
    if (!plan.ok()) {
      out->status = plan.status();
      out->usage.cpu_ms = round_cpu.ElapsedMs();
      return;
    }
    ShardEvalContext sctx;
    const ShardEvalContext* sptr = nullptr;
    if (shards != nullptr) {
      sctx.shards = shards;
      sctx.per_shard_counters = &out->shard_counters;
      sptr = &sctx;
    }
    out->answers = evaluator_.Evaluate(*plan, EvalMode::kExact, opts.k,
                                       opts.scheme, round_penalty(round),
                                       &out->counters, rc, evpool, cache,
                                       &out->usage, sptr);
    // Evaluate's usage.cpu_ms holds only its pool-worker time; adding the
    // timer completes the round's bill while the split stays recoverable.
    out->off_thread_cpu_ms = out->usage.cpu_ms;
    out->usage.cpu_ms += round_cpu.ElapsedMs();
  };

  // Merges one evaluated round into the result, replaying the serial
  // loop's bookkeeping. Returns true when the run is complete (a
  // stopping rule fired); later speculative rounds are then discarded.
  auto merge_round = [&](size_t round, RoundOutput&& out,
                         Span* inline_span) -> bool {
    if (out.pruned) ++result.rounds_pruned;
    result.counters.Add(out.counters);
    // Statically pruned rounds never ran the evaluator, so they carry no
    // per-shard deltas.
    if (out.shard_counters.size() == shard_totals.size()) {
      for (size_t i = 0; i < shard_totals.size(); ++i) {
        shard_totals[i].Add(out.shard_counters[i]);
      }
    }
    // DPO appends: later rounds never outrank earlier ones
    // (structure-first), so no resorting — answers seen before keep
    // their earlier (higher) score.
    size_t new_answers = 0;
    for (RankedAnswer& a : out.answers) {
      if (seen.insert(a.node).second) {
        result.answers.push_back(std::move(a));
        ++new_answers;
      }
    }
    result.relaxations_used = round;
    if (round > 0) {
      result.penalty_applied = round_penalty(round);
      result.predicates_dropped = schedule[round - 1].dropped.size();
    }
    if (inline_span != nullptr) {
      inline_span->Annotate("new_answers",
                            static_cast<uint64_t>(new_answers));
      inline_span->Annotate("answers_so_far",
                            static_cast<uint64_t>(result.answers.size()));
    } else if (out.has_span) {
      out.span.Annotate("new_answers", static_cast<uint64_t>(new_answers));
      out.span.Annotate("answers_so_far",
                        static_cast<uint64_t>(result.answers.size()));
      trace->Adopt(std::move(out.span));
    }
    const bool have_k = result.answers.size() >= opts.k;
    if (cert.stop_rule == DpoStopRule::kAtK && have_k) return true;
    if (cert.stop_rule == DpoStopRule::kPenaltyMargin && have_k &&
        stop_below == -std::numeric_limits<double>::infinity()) {
      stop_below = base - round_penalty(round) - cert.stop_margin_factor * m;
    }
    // kExhaustive (e.g. keyword-first): run every round.
    return false;
  };

  // Rounds run in waves of speculative evaluations: sizes 1, 2, 4, ...
  // capped at the pool size, so the common case (round 0 already yields
  // K answers) wastes nothing, while relaxation-heavy queries quickly
  // saturate the pool. A wave of one runs inline on this thread with
  // within-plan parallelism; larger waves put one whole round per
  // worker. The merge replays rounds strictly in round order, so output
  // and counters match the serial loop exactly at any thread count.
  size_t next_round = 0;
  size_t wave = 1;
  bool done = false;
  while (!done && next_round <= schedule.size()) {
    const size_t wave_n =
        std::min(wave, schedule.size() + 1 - next_round);
    if (wave_n == 1 || pool == nullptr) {
      const size_t round = next_round;
      if (cert.stop_rule == DpoStopRule::kPenaltyMargin &&
          base - round_penalty(round) < stop_below) {
        break;
      }
      // Round 0 evaluates the unrelaxed query; every later span is one
      // relaxation round proper, so a DPO trace carries exactly
      // `relaxations_used` spans named "relaxation_round".
      Span round_span(trace,
                      round == 0 ? "initial_round" : "relaxation_round");
      annotate_round(&round_span, round);
      RoundOutput out;
      eval_round(round, trace, pool, &out);
      if (!out.status.ok()) return out.status;
      if (out.pruned) round_span.Annotate("static_pruned", out.prune_reason);
      AnnotateCounters(&round_span, out.counters);
      AnnotateUsage(&round_span, out.usage);
      off_thread_cpu_ms += out.off_thread_cpu_ms;
      done = merge_round(round, std::move(out), &round_span);
      if (!done && budgeted && budget_spent()) {
        trip_budget();
        done = true;
      }
      ++next_round;
    } else {
      // Spawn the wave. Each worker assembles its round's span subtree in
      // its own collector (root = the round span); the merge grafts
      // accepted subtrees into the parent trace in round order, shifted
      // onto the parent timeline by the wave's launch offset.
      const double offset = trace != nullptr ? trace->NowMs() : 0.0;
      std::vector<RoundOutput> outs(wave_n);
      TaskGroup group(pool);
      for (size_t i = 0; i < wave_n; ++i) {
        const size_t round = next_round + i;
        group.Run([&, round, i] {
          RoundOutput* out = &outs[i];
          std::optional<TraceCollector> wc;
          if (trace != nullptr) {
            wc.emplace(round == 0 ? "initial_round" : "relaxation_round");
            annotate_round(wc->current(), round);
            wc->current()->Annotate(
                "worker",
                static_cast<uint64_t>(ThreadPool::CurrentWorkerId()));
          }
          eval_round(round, wc.has_value() ? &*wc : nullptr, nullptr, out);
          if (wc.has_value()) {
            if (out->pruned) {
              wc->current()->Annotate("static_pruned", out->prune_reason);
            }
            AnnotateCounters(wc->current(), out->counters);
            AnnotateUsage(wc->current(), out->usage);
            QueryTrace t = wc->Finish();
            t.root.ShiftBy(offset);
            out->span = std::move(t.root);
            out->has_span = true;
          }
        });
      }
      group.Wait();
      // Every wave round ran off the coordinating thread, so its whole
      // bill — merged or discarded — is off-thread CPU the query burned.
      for (size_t i = 0; i < wave_n; ++i) {
        off_thread_cpu_ms += outs[i].usage.cpu_ms;
      }
      size_t merged = 0;
      for (size_t i = 0; i < wave_n && !done; ++i) {
        const size_t round = next_round + i;
        if (cert.stop_rule == DpoStopRule::kPenaltyMargin &&
            base - round_penalty(round) < stop_below) {
          done = true;
          break;
        }
        if (!outs[i].status.ok()) return outs[i].status;
        done = merge_round(round, std::move(outs[i]), nullptr);
        merged = i + 1;
        if (!done && budgeted && budget_spent()) {
          trip_budget();
          done = true;
        }
      }
      // Speculation past the stopping point: the rounds ran, their CPU is
      // billed above, but nothing of theirs enters the result.
      if (done) {
        for (size_t i = merged; i < wave_n; ++i) {
          FlightRecorder::Global().Record(FlightEventType::kRoundDiscard,
                                          next_round + i);
        }
      }
      next_round += wave_n;
    }
    if (pool != nullptr) wave = std::min(wave * 2, pool->size());
  }

  SortByScheme(&result.answers, opts.scheme);
  if (result.answers.size() > opts.k) result.answers.resize(opts.k);
  if (shards != nullptr) FillShardStats(*shards, shard_totals, &result);
  // Hand Run() only the off-coordinator CPU; it recomputes the
  // deterministic usage fields from the merged counters and adds its own
  // coordinator timer on top.
  result.usage.cpu_ms = off_thread_cpu_ms;
  return result;
}

Result<TopKResult> TopKProcessor::RunEncoded(const Tpq& q,
                                             const TopKOptions& opts,
                                             const SchemeCertificate& cert,
                                             const PenaltyModel& pm,
                                             EvalMode mode,
                                             TraceCollector* trace,
                                             ThreadPool* pool,
                                             const ShardedCorpus* shards) {
  TopKResult result;
  // Sharded scatter-gather attribution: every encoded pass's per-shard
  // deltas accumulate (unlike DPO there is no speculation to discard).
  std::vector<ExecCounters> shard_totals(
      shards != nullptr ? shards->num_shards() : 0);
  // Budget accounting mirrors RunDpo's: the check sits between encoded
  // passes (never inside one), and a budget-free run takes no new
  // branches.
  const ThreadCpuTimer algo_cpu;
  double off_thread_cpu_ms = 0.0;
  const bool budgeted = opts.max_cpu_ms > 0.0 || opts.max_tuples > 0;
  auto budget_spent = [&]() -> bool {
    if (opts.max_tuples > 0 &&
        result.counters.tuples_created >= opts.max_tuples) {
      return true;
    }
    return opts.max_cpu_ms > 0.0 &&
           algo_cpu.ElapsedMs() + off_thread_cpu_ms >= opts.max_cpu_ms;
  };
  Span schedule_span(trace, "build_schedule");
  const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  schedule_span.Annotate("entries", static_cast<uint64_t>(schedule.size()));
  schedule_span.Close();
  SelectivityEstimator estimator(stats_, ir_);

  // Statically pick how many relaxations to encode (SSO lines 3-7): keep
  // adding the next-cheapest relaxation while the estimate is short of K.
  Span estimate_span(trace, "selectivity_estimate");
  size_t encoded = 0;
  if (cert.stop_rule == DpoStopRule::kExhaustive) {
    // No provable bound on what later relaxations contribute (e.g.
    // keyword-first: any structural score can reach the top-K), so every
    // relaxation must be encoded (Section 5.1).
    encoded = schedule.size();
  } else {
    // Chain queries are nested (Q ⊂ Q_1 ⊂ ...), so the most relaxed
    // encoded query's estimate *is* the estimated answer count — no
    // summing across relaxations.
    double estimate = estimator.EstimateAnswers(q);
    while (estimate < static_cast<double>(opts.k) &&
           encoded < schedule.size()) {
      ++encoded;
      estimate = std::max(
          estimate, estimator.EstimateAnswers(schedule[encoded - 1].relaxed));
    }
    estimate_span.Annotate("estimated_answers", estimate);
  }
  estimate_span.Annotate("encoded", static_cast<uint64_t>(encoded));
  estimate_span.Close();

  AnalyzerContext actx;
  actx.index = index_;
  actx.stats = stats_;
  actx.ir = ir_;
  actx.dict = &index_->corpus().tags();

  // Answers come only from the final pass, and a provably-empty encoding
  // yields no answers, so the dynamic retry loop below would advance
  // straight past it — skip ahead without building those plans. The last
  // schedule entry is never skipped: with nothing left to advance to,
  // the loop must still run its pass to produce the result metadata.
  auto skip_provably_empty = [&] {
    if (!opts.static_prune) return;
    while (encoded < schedule.size()) {
      const Tpq& cur = encoded == 0 ? q : schedule[encoded - 1].relaxed;
      std::optional<std::string> reason = ProvablyEmptyReason(cur, actx);
      if (!reason.has_value()) break;
      Span skip_span(trace, "static_prune_skip");
      skip_span.Annotate("encoded", static_cast<uint64_t>(encoded));
      skip_span.Annotate("static_pruned", *reason);
      ++encoded;
      ++result.rounds_pruned;
      ++result.counters.rounds_pruned_static;
    }
  };
  skip_provably_empty();

  // Sub-plan result cache: a re-encoded pass differs from the pass
  // before only in the steps that gained optional predicates, so the run
  // tier lets the restart loop resume from the unchanged prefix. (The
  // prune-off retry keys differently on purpose: the threshold bound
  // changes step outputs, so pruned and unpruned passes must not share
  // entries.) No exclusion set: encoded modes produce the whole answer
  // set in one pass.
  std::optional<ResultCache> run_cache;
  EvalCacheContext cache_ctx;
  const EvalCacheContext* cache = nullptr;
  // As in RunDpo: sharded runs skip the cache (entries key whole-corpus
  // tuple lists; FX310), and so do schemes whose certificate refutes
  // cache exactness (FX304).
  if (opts.result_cache.tier != CacheTier::kOff && shards == nullptr &&
      cert.cache_exact.holds) {
    run_cache.emplace(opts.result_cache.run_budget_bytes);
    cache_ctx.run = &*run_cache;
    if (opts.result_cache.tier == CacheTier::kShared) {
      cache_ctx.shared = &ResultCache::Global();
    }
    cache_ctx.corpus_generation = index_->corpus().generation();
    cache = &cache_ctx;
  }

  bool prune = true;
  for (;;) {
    const Tpq& relaxed = encoded == 0 ? q : schedule[encoded - 1].relaxed;
    const std::set<Predicate> dropped =
        encoded == 0 ? std::set<Predicate>{} : schedule[encoded - 1].dropped;
    Span pass_span(trace, "encoded_pass");
    pass_span.Annotate("encoded", static_cast<uint64_t>(encoded));
    pass_span.Annotate("prune", prune ? "on" : "off");
    if (pass_span.active() && !dropped.empty()) {
      std::vector<std::string> names;
      names.reserve(dropped.size());
      for (const Predicate& p : dropped) {
        names.push_back(p.ToString(&index_->corpus().tags()));
      }
      pass_span.Annotate("dropped", Join(names, ", "));
    }
    Span build_span(trace, "plan_build");
    Result<JoinPlan> plan =
        JoinPlan::Build(q, relaxed, dropped, pm, opts.weights);
    build_span.Close();
    if (!plan.ok()) return plan.status();
    const uint64_t pruned_before = result.counters.tuples_pruned;
    ExecCounters pass_counters;
    const ThreadCpuTimer pass_cpu;
    ResourceUsage pass_usage;
    FlightRecorder::Global().Record(FlightEventType::kRoundStart, encoded);
    // SSO/Hybrid encode the whole relaxation batch into this one plan, so
    // the pass itself is the parallel unit: the evaluator fans each join
    // step out over tuple chunks on the pool (or over shards when
    // sharded — shards are then the work units).
    std::vector<ExecCounters> pass_shard;
    ShardEvalContext sctx;
    const ShardEvalContext* sptr = nullptr;
    if (shards != nullptr) {
      sctx.shards = shards;
      sctx.per_shard_counters = &pass_shard;
      sptr = &sctx;
    }
    result.answers = evaluator_.Evaluate(*plan, mode, prune ? opts.k : 0,
                                         opts.scheme, 0.0, &pass_counters,
                                         trace, pool, cache, &pass_usage,
                                         sptr);
    result.counters.Add(pass_counters);
    if (pass_shard.size() == shard_totals.size()) {
      for (size_t i = 0; i < shard_totals.size(); ++i) {
        shard_totals[i].Add(pass_shard[i]);
      }
    }
    off_thread_cpu_ms += pass_usage.cpu_ms;  // Worker CPU only, see Evaluate.
    pass_usage.cpu_ms += pass_cpu.ElapsedMs();
    AnnotateCounters(&pass_span, pass_counters);
    AnnotateUsage(&pass_span, pass_usage);
    pass_span.Annotate("answers",
                       static_cast<uint64_t>(result.answers.size()));
    result.relaxations_used = encoded;
    if (encoded > 0) {
      result.penalty_applied = schedule[encoded - 1].cumulative_penalty;
      result.predicates_dropped = schedule[encoded - 1].dropped.size();
    }
    if (result.answers.size() >= opts.k) break;
    if (budgeted && budget_spent()) {
      result.budget_exhausted = true;
      FlightRecorder::Global().Record(
          FlightEventType::kBudgetTrip, result.counters.tuples_created,
          opts.max_tuples, algo_cpu.ElapsedMs() + off_thread_cpu_ms);
      break;
    }
    // Fewer than K answers (SSO line 11). Two possible causes: the
    // threshold pruned tuples whose higher-bound competitors later died
    // (the threshold is optimistic, as in the paper) — retry the same
    // plan unpruned; or the selectivity estimate was short — encode one
    // more relaxation and restart.
    if (prune && result.counters.tuples_pruned > pruned_before) {
      prune = false;
      continue;
    }
    if (encoded >= schedule.size()) break;
    ++encoded;
    prune = true;
    skip_provably_empty();
  }

  if (result.answers.size() > opts.k) result.answers.resize(opts.k);
  if (shards != nullptr) FillShardStats(*shards, shard_totals, &result);
  // As in RunDpo: only the off-coordinator CPU travels back; Run()
  // finalizes the rest from the counters.
  result.usage.cpu_ms = off_thread_cpu_ms;
  return result;
}

Result<const ShardedCorpus*> TopKProcessor::ShardsFor(size_t num_shards) {
  MutexLock lock(shards_mu_);
  std::unique_ptr<ShardedCorpus>& slot = shards_[num_shards];
  if (slot == nullptr) {
    auto built = std::make_unique<ShardedCorpus>(
        &index_->corpus(), index_->hierarchy(), num_shards);
    // The partition's merged statistics must equal the full-corpus
    // tables before either side may feed selectivity estimation — a
    // divergence means the partition saw a different corpus than the
    // stats did, and answers could silently differ.
    if (stats_ != nullptr) {
      FLEXPATH_RETURN_IF_ERROR(built->ReconcileWith(*stats_));
    }
    slot = std::move(built);
  }
  // Built (possibly long ago) against the corpus as it was then; a
  // corpus that has grown since must be re-indexed and re-sharded, not
  // silently rebalanced — the processor's global index is just as stale,
  // so rebalancing here would mask the real error. RunWithShards turns
  // the mismatch into the user-facing diagnostic.
  return slot.get();
}

ThreadPool* TopKProcessor::PoolFor(const TopKOptions& opts) {
  const size_t n = opts.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                                         : opts.num_threads;
  if (n <= 1) return nullptr;
  MutexLock lock(pools_mu_);
  std::unique_ptr<ThreadPool>& slot = pools_[n];
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(n);
  return slot.get();
}

}  // namespace flexpath
