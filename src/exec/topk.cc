#include "exec/topk.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "relax/schedule.h"

namespace flexpath {

namespace {

struct NodeRefHash {
  size_t operator()(const NodeRef& r) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(r.doc) << 32) |
                                 r.node);
  }
};

void SortByScheme(std::vector<RankedAnswer>* answers, RankScheme scheme) {
  std::sort(answers->begin(), answers->end(),
            [&](const RankedAnswer& a, const RankedAnswer& b) {
              if (RanksBefore(a.score, b.score, scheme)) return true;
              if (RanksBefore(b.score, a.score, scheme)) return false;
              return a.node < b.node;
            });
}

}  // namespace

const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kDpo:
      return "DPO";
    case Algorithm::kSso:
      return "SSO";
    case Algorithm::kHybrid:
      return "Hybrid";
  }
  return "unknown";
}

Result<TopKResult> TopKProcessor::Run(const Tpq& q, Algorithm algo,
                                      const TopKOptions& opts) {
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  FLEXPATH_RETURN_IF_ERROR(q.Validate());
  if (q.ContainsCount() > 0 && ir_ == nullptr) {
    return Status::InvalidArgument(
        "query has contains predicates but no IR engine is attached");
  }
  PenaltyModel pm(q, stats_, ir_, opts.weights);
  switch (algo) {
    case Algorithm::kDpo:
      return RunDpo(q, opts, pm);
    case Algorithm::kSso:
      return RunEncoded(q, opts, pm, EvalMode::kSsoFlat);
    case Algorithm::kHybrid:
      return RunEncoded(q, opts, pm, EvalMode::kHybridBuckets);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<TopKResult> TopKProcessor::RunDpo(const Tpq& q,
                                         const TopKOptions& opts,
                                         const PenaltyModel& pm) {
  TopKResult result;
  const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);

  // Stopping rules per scheme (Section 5.1): structure-first stops as
  // soon as K answers exist; keyword-first must evaluate every
  // relaxation; combined keeps going until the structural score falls
  // below (K-th round's score − m), m = total contains weight.
  std::unordered_set<NodeRef, NodeRefHash> seen;
  double stop_below = -std::numeric_limits<double>::infinity();
  const double m = [&] {
    double total = 0.0;
    for (VarId v : q.Vars()) {
      for (const FtExpr& e : q.node(v).contains) {
        total += opts.weights.Of(Predicate::Contains(v, e));
      }
    }
    return total;
  }();

  for (size_t round = 0; round <= schedule.size(); ++round) {
    const Tpq& relaxed = round == 0 ? q : schedule[round - 1].relaxed;
    const double penalty =
        round == 0 ? 0.0 : schedule[round - 1].cumulative_penalty;
    if (opts.scheme == RankScheme::kCombined &&
        BaseStructuralScore(q, opts.weights) - penalty < stop_below) {
      break;
    }
    Result<JoinPlan> plan =
        JoinPlan::Build(q, relaxed, {}, pm, opts.weights);
    if (!plan.ok()) return plan.status();
    std::vector<RankedAnswer> round_answers = evaluator_.Evaluate(
        *plan, EvalMode::kExact, opts.k, opts.scheme, penalty,
        &result.counters);
    // DPO appends: later rounds never outrank earlier ones
    // (structure-first), so no resorting — answers seen before keep
    // their earlier (higher) score.
    for (RankedAnswer& a : round_answers) {
      if (seen.insert(a.node).second) {
        result.answers.push_back(std::move(a));
      }
    }
    result.relaxations_used = round;
    const bool have_k = result.answers.size() >= opts.k;
    if (opts.scheme == RankScheme::kStructureFirst && have_k) break;
    if (opts.scheme == RankScheme::kCombined && have_k &&
        stop_below == -std::numeric_limits<double>::infinity()) {
      stop_below = BaseStructuralScore(q, opts.weights) - penalty - m;
    }
    // keyword-first: run every round.
  }

  SortByScheme(&result.answers, opts.scheme);
  if (result.answers.size() > opts.k) result.answers.resize(opts.k);
  return result;
}

Result<TopKResult> TopKProcessor::RunEncoded(const Tpq& q,
                                             const TopKOptions& opts,
                                             const PenaltyModel& pm,
                                             EvalMode mode) {
  TopKResult result;
  const std::vector<ScheduleEntry> schedule = BuildSchedule(q, pm);
  SelectivityEstimator estimator(stats_, ir_);

  // Statically pick how many relaxations to encode (SSO lines 3-7): keep
  // adding the next-cheapest relaxation while the estimate is short of K.
  size_t encoded = 0;
  if (opts.scheme == RankScheme::kKeywordFirst) {
    // Keyword-first: any structural score can reach the top-K, so every
    // relaxation must be encoded (Section 5.1).
    encoded = schedule.size();
  } else {
    // Chain queries are nested (Q ⊂ Q_1 ⊂ ...), so the most relaxed
    // encoded query's estimate *is* the estimated answer count — no
    // summing across relaxations.
    double estimate = estimator.EstimateAnswers(q);
    while (estimate < static_cast<double>(opts.k) &&
           encoded < schedule.size()) {
      ++encoded;
      estimate = std::max(
          estimate, estimator.EstimateAnswers(schedule[encoded - 1].relaxed));
    }
  }

  bool prune = true;
  for (;;) {
    const Tpq& relaxed = encoded == 0 ? q : schedule[encoded - 1].relaxed;
    const std::set<Predicate> dropped =
        encoded == 0 ? std::set<Predicate>{} : schedule[encoded - 1].dropped;
    Result<JoinPlan> plan =
        JoinPlan::Build(q, relaxed, dropped, pm, opts.weights);
    if (!plan.ok()) return plan.status();
    const uint64_t pruned_before = result.counters.tuples_pruned;
    result.answers = evaluator_.Evaluate(*plan, mode, prune ? opts.k : 0,
                                         opts.scheme, 0.0, &result.counters);
    result.relaxations_used = encoded;
    if (result.answers.size() >= opts.k) break;
    // Fewer than K answers (SSO line 11). Two possible causes: the
    // threshold pruned tuples whose higher-bound competitors later died
    // (the threshold is optimistic, as in the paper) — retry the same
    // plan unpruned; or the selectivity estimate was short — encode one
    // more relaxation and restart.
    if (prune && result.counters.tuples_pruned > pruned_before) {
      prune = false;
      continue;
    }
    if (encoded >= schedule.size()) break;
    ++encoded;
    prune = true;
  }

  if (result.answers.size() > opts.k) result.answers.resize(opts.k);
  return result;
}

}  // namespace flexpath
