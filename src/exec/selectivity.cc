#include "exec/selectivity.h"

namespace flexpath {

double SelectivityEstimator::EstimateAnswers(const Tpq& q) {
  if (q.empty()) return 0.0;
  const TagId dist_tag = q.node(q.distinguished()).tag;
  double estimate = static_cast<double>(stats_->TagCount(dist_tag));
  for (VarId v : q.Vars()) {
    const VarId parent = q.Parent(v);
    if (parent != kInvalidVar) {
      const TagId pt = q.node(parent).tag;
      const TagId ct = q.node(v).tag;
      const double frac = q.AxisOf(v) == Axis::kChild
                              ? stats_->PcFraction(pt, ct)
                              : stats_->AdFraction(pt, ct);
      estimate *= frac;
    }
    if (ir_ != nullptr) {
      for (const FtExpr& e : q.node(v).contains) {
        const std::shared_ptr<const ContainsResult> result = ir_->Evaluate(e);
        const TagId t = q.node(v).tag;
        const double total = static_cast<double>(stats_->TagCount(t));
        const double have = static_cast<double>(result->CountWithTag(t));
        estimate *= total > 0 ? have / total : 0.0;
      }
    }
  }
  return estimate;
}

}  // namespace flexpath
