#include "exec/evaluator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "rank/scheme_registry.h"
#include "shard/merge.h"

namespace flexpath {

namespace {

/// Binding placeholder for a deleted (null) variable.
constexpr NodeRef kNullRef{UINT32_MAX, UINT32_MAX};

bool IsNull(NodeRef ref) { return ref == kNullRef; }

// The pipeline's tuple type lives in exec/result_cache.h so cached step
// results can share it; NodeRefHash comes from xml/corpus.h.
using Tuple = ExecTuple;

/// Exact dominance pruning: tuples that agree on every live binding have
/// identical futures (same remaining predicate outcomes, same keyword
/// chains), so only the lowest-penalty one can contribute a top answer.
/// This keeps independent pattern branches from multiplying the
/// intermediate result — without it, a query with b branches of m
/// matches each materializes m^b tuples per answer instead of b*m.
void DominancePrune(const std::vector<int>& live_steps,
                    std::vector<Tuple>* tuples) {
  if (tuples->size() < 2) return;
  struct KeyHash {
    const std::vector<Tuple>* tuples;
    const std::vector<int>* live;
    size_t operator()(size_t idx) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (int s : *live) {
        const NodeRef r = (*tuples)[idx].bindings[static_cast<size_t>(s)];
        h ^= NodeRefHash()(r) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  struct KeyEq {
    const std::vector<Tuple>* tuples;
    const std::vector<int>* live;
    bool operator()(size_t a, size_t b) const {
      for (int s : *live) {
        if (!((*tuples)[a].bindings[static_cast<size_t>(s)] ==
              (*tuples)[b].bindings[static_cast<size_t>(s)])) {
          return false;
        }
      }
      return true;
    }
  };
  std::unordered_map<size_t, size_t, KeyHash, KeyEq> best(
      16, KeyHash{tuples, &live_steps}, KeyEq{tuples, &live_steps});
  for (size_t i = 0; i < tuples->size(); ++i) {
    auto [it, inserted] = best.emplace(i, i);
    if (!inserted && (*tuples)[i].penalty < (*tuples)[it->second].penalty) {
      it->second = i;
    }
  }
  if (best.size() == tuples->size()) return;
  std::vector<Tuple> kept;
  kept.reserve(best.size());
  // Preserve document order by scanning in order and keeping winners.
  std::vector<bool> keep(tuples->size(), false);
  for (const auto& [key, idx] : best) keep[idx] = true;
  for (size_t i = 0; i < tuples->size(); ++i) {
    if (keep[i]) kept.push_back(std::move((*tuples)[i]));
  }
  *tuples = std::move(kept);
}

/// The one cross-shard dominance collision class: non-null live bindings
/// are document-local and shards are document-disjoint, so tuples from
/// different shards can only agree on every live binding when all those
/// bindings are null (vacuously, when no live step is bound yet). After
/// per-shard DominancePrune each shard holds at most one such tuple;
/// this pass keeps the global winner — lowest penalty, earliest shard on
/// ties, which is exactly the first-seen tuple a global prune would have
/// kept — and erases the rest, making the per-shard pipeline's combined
/// tuple set byte-identical to the unsharded one.
void MergeNullLive(const std::vector<int>& live_steps,
                   std::vector<std::vector<Tuple>>* parts) {
  struct Hit {
    size_t part;
    size_t idx;
    double penalty;
  };
  std::vector<Hit> hits;
  for (size_t p = 0; p < parts->size(); ++p) {
    const std::vector<Tuple>& ts = (*parts)[p];
    for (size_t i = 0; i < ts.size(); ++i) {
      bool all_null = true;
      for (int s : live_steps) {
        if (!IsNull(ts[i].bindings[static_cast<size_t>(s)])) {
          all_null = false;
          break;
        }
      }
      if (all_null) {
        // Per-shard DominancePrune left at most one per shard.
        hits.push_back(Hit{p, i, ts[i].penalty});
        break;
      }
    }
  }
  if (hits.size() < 2) return;
  size_t win = 0;
  for (size_t h = 1; h < hits.size(); ++h) {
    if (hits[h].penalty < hits[win].penalty) win = h;
  }
  for (size_t h = hits.size(); h-- > 0;) {
    if (h == win) continue;
    std::vector<Tuple>& ts = (*parts)[hits[h].part];
    ts.erase(ts.begin() + static_cast<long>(hits[h].idx));
  }
}

/// Runs `body(begin, end, out, ctr)` over [0, n) in contiguous chunks on
/// the pool, then concatenates per-chunk outputs and folds per-chunk
/// counters *in chunk-index order*. Because chunk boundaries are a pure
/// function of (n, grain, pool size) and concatenation order equals
/// iteration order, the merged output and counters are byte-identical to
/// one serial body(0, n) pass at any thread count.
///
/// `worker_cpu_ms` accumulates the thread-CPU time chunks burned on pool
/// workers (nothing when the split stays inline — that CPU is already the
/// calling thread's and the caller accounts for it).
template <typename Body>
void ChunkedExtend(ThreadPool* pool, size_t n, size_t grain,
                   std::vector<Tuple>* out, ExecCounters* ctr,
                   double* worker_cpu_ms, const Body& body) {
  const std::vector<std::pair<size_t, size_t>> ranges =
      ChunkRanges(pool, n, grain);
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    body(ranges[0].first, ranges[0].second, out, ctr);
    return;
  }
  std::vector<std::vector<Tuple>> outs(ranges.size());
  std::vector<ExecCounters> ctrs(ranges.size());
  TaskGroup group(pool);
  for (size_t c = 0; c < ranges.size(); ++c) {
    group.Run([&ranges, &outs, &ctrs, &body, c] {
      body(ranges[c].first, ranges[c].second, &outs[c], &ctrs[c]);
    });
  }
  group.Wait();
  *worker_cpu_ms += group.WorkerCpuMs();
  for (size_t c = 0; c < ranges.size(); ++c) {
    ctr->Add(ctrs[c]);
    out->reserve(out->size() + outs[c].size());
    std::move(outs[c].begin(), outs[c].end(), std::back_inserter(*out));
  }
}

}  // namespace

ResourceUsage UsageFromCounters(const ExecCounters& c) {
  ResourceUsage u;
  u.tuples_scanned = c.candidates_probed;
  u.tuples_produced = c.tuples_created;
  // An estimate, not an allocator count: each probe reads one Element
  // record; each materialized tuple copies its bindings vector (a handful
  // of NodeRefs) plus the tuple header. 64 bytes is the round figure for
  // the common 3-5 step plans; the point is comparability across queries,
  // not byte-exactness.
  u.bytes_touched =
      c.candidates_probed * sizeof(Element) + c.tuples_created * 64;
  u.cache_hits = c.cache_step_hits;
  u.cache_misses = c.cache_step_misses;
  u.rounds_executed = c.plan_passes;
  u.rounds_pruned = c.rounds_pruned_static;
  return u;
}

void ExecCounters::Add(const ExecCounters& other) {
  // Zip the two VisitFields traversals: both walk in declaration order,
  // so src[i] is the `other` field matching this object's i-th field.
  std::array<const uint64_t*, kFieldCount> src{};
  size_t filled = 0;
  VisitFields(other, [&](const char* /*name*/, const uint64_t& value,
                         Agg /*agg*/) {
    assert(filled < kFieldCount);
    src[filled++] = &value;
  });
  size_t applied = 0;
  VisitFields(*this, [&](const char* /*name*/, uint64_t& value, Agg agg) {
    assert(applied < filled);
    const uint64_t s = *src[applied++];
    value = agg == Agg::kMax ? std::max(value, s) : value + s;
  });
  // The differential half of the accounting lint: the static_assert in
  // the header pins the field count, this pins the visitor to it.
  assert(filled == kFieldCount && applied == kFieldCount &&
         "ExecCounters::VisitFields does not visit every field");
  (void)filled;
  (void)applied;
}

std::vector<RankedAnswer> PlanEvaluator::Evaluate(
    const JoinPlan& plan, EvalMode mode, size_t k, RankScheme scheme,
    double exact_penalty, ExecCounters* counters, TraceCollector* trace,
    ThreadPool* pool, const EvalCacheContext* cache, ResourceUsage* usage,
    const ShardEvalContext* shard) {
  // Work is tallied locally, then folded into the caller's counters and
  // the global registry — so per-call deltas are exact even when the
  // caller accumulates across plan passes.
  ExecCounters ctr;
  ++ctr.plan_passes;
  double worker_cpu_ms = 0.0;

  const bool sharded = shard != nullptr;
  // The cache keys whole-corpus tuple lists; a sharded pass neither
  // probes nor populates it (callers already disable it — see topk.cc).
  assert(!sharded || cache == nullptr);
  if (sharded) cache = nullptr;
  const size_t nshards = sharded ? shard->shards->num_shards() : 1;
  assert(nshards > 0);
  // Per-shard work attribution, reported through the shard context.
  std::vector<ExecCounters> shard_ctr(sharded ? nshards : 0);

  const Corpus& corpus = index_->corpus();
  assert(!sharded || &shard->shards->corpus() == &corpus);
  const std::vector<PlanStep>& steps = plan.steps();
  assert(!steps.empty());

  // Resolve every contains expression the plan can mention (original
  // query expressions; promoted predicates reuse the same keys).
  std::unordered_map<std::string, std::shared_ptr<const ContainsResult>>
      contains_results;
  {
    Span resolve_span(trace, "resolve_contains");
    for (VarId v : plan.query().Vars()) {
      for (const FtExpr& e : plan.query().node(v).contains) {
        assert(ir_ != nullptr && "plan has contains but no IR engine");
        Span probe_span(trace, "ir_probe");
        std::shared_ptr<const ContainsResult> result = ir_->Evaluate(e);
        probe_span.Annotate("expr", e.ToString());
        probe_span.Annotate("satisfying",
                            static_cast<uint64_t>(result->satisfying().size()));
        contains_results.emplace(e.ToString(), result);
      }
    }
  }

  const bool use_optionals = mode != EvalMode::kExact;
  // Threshold pruning runs only when the scheme's certificate proves it
  // sound (FX301/FX302, DESIGN.md §16): the bound arithmetic below is in
  // ss units with an optimistic keyword bonus of prune_ks_factor x the
  // plan's maximum keyword mass (0 for structure-first, 1 for combined;
  // keyword-first carries no certificate license and never prunes).
  // Unknown scheme values — impossible through TopKProcessor, which
  // validates up front — fall back to the unpruned exact path.
  const SchemeCertificate* cert = SchemeRegistry::Global().Certificate(scheme);
  const bool prune =
      k > 0 && use_optionals && cert != nullptr && cert->threshold_pruning;
  const double ks_bonus =
      prune ? cert->prune_ks_factor * plan.max_keyword_score() : 0.0;
  const int dist_step = plan.distinguished_step();

  // One tuple list per shard; the serial path is the one-part case,
  // except that it runs the cache and the within-step chunk fan-out
  // (shards are the parallel unit when sharding).
  std::vector<std::vector<Tuple>> parts(nshards);
  std::vector<Tuple>& tuples = parts[0];  ///< Serial-path alias.

  // --- Sub-plan result cache (DESIGN.md §12). ---------------------------
  const bool cache_on =
      cache != nullptr && (cache->run != nullptr || cache->shared != nullptr);
  // Incremental DPO: drop tuples for already-answered nodes. Exact mode
  // only — encoded modes produce their whole answer set in one pass.
  const bool excluding = cache != nullptr && mode == EvalMode::kExact &&
                         cache->exclude != nullptr &&
                         !cache->exclude->empty();
  // The threshold bound makes step outputs depend on k in encoded modes;
  // kExact never prunes, so its entries are k-independent and every DPO
  // round of every k shares them.
  const uint64_t prune_k = prune ? static_cast<uint64_t>(k) : 0;
  auto step_key = [&](size_t s) {
    return StepCacheKey(plan.step_fingerprint(s), cache->corpus_generation,
                        static_cast<uint8_t>(mode),
                        static_cast<uint8_t>(scheme), prune_k);
  };
  // Removes tuples whose distinguished binding is in the exclusion set.
  auto drop_excluded = [&](std::vector<Tuple>* ts, ExecCounters* c) {
    const size_t before = ts->size();
    ts->erase(
        std::remove_if(ts->begin(), ts->end(),
                       [&](const Tuple& t) {
                         return cache->exclude->count(t.bindings[static_cast<
                                    size_t>(dist_step)]) != 0;
                       }),
        ts->end());
    c->tuples_excluded += before - ts->size();
  };

  // Evaluates one predicate against a (partial) tuple extended by `cand`
  // at step `s`. Null operands fail the predicate.
  auto holds = [&](const Predicate& p, const std::vector<NodeRef>& bindings,
                   NodeRef cand, const std::map<VarId, int>& step_of) {
    auto bind_of = [&](VarId v) -> NodeRef {
      const int s = step_of.at(v);
      return s == static_cast<int>(bindings.size()) ? cand
                                                    : bindings[static_cast<size_t>(s)];
    };
    switch (p.kind) {
      case PredKind::kPc: {
        NodeRef a = bind_of(p.x);
        NodeRef d = bind_of(p.y);
        if (IsNull(a) || IsNull(d)) return false;
        return corpus.IsParent(a, d);
      }
      case PredKind::kAd: {
        NodeRef a = bind_of(p.x);
        NodeRef d = bind_of(p.y);
        if (IsNull(a) || IsNull(d)) return false;
        return corpus.IsAncestor(a, d);
      }
      case PredKind::kContains: {
        NodeRef x = bind_of(p.x);
        if (IsNull(x)) return false;
        auto it = contains_results.find(p.expr_key);
        if (it == contains_results.end()) return false;
        return it->second->Satisfies(x);
      }
      case PredKind::kTag:
        return true;  // implicit in the scan list
    }
    return false;
  };

  std::map<VarId, int> step_of;
  for (size_t i = 0; i < steps.size(); ++i) {
    step_of[steps[i].var] = static_cast<int>(i);
  }

  // Candidate filter shared by all steps: attribute predicates.
  auto attrs_ok = [&](const PlanStep& step, NodeRef ref) {
    for (const AttrPred& ap : step.attr_preds) {
      const std::string* val =
          corpus.doc(ref.doc).FindAttribute(ref.node, ap.attr);
      if (val == nullptr || !ap.Matches(*val)) return false;
    }
    return true;
  };

  // The shard's access path: its own doc-range index. NodeRefs it yields
  // are global, so everything downstream of the scan is shard-agnostic.
  auto scan_for = [&](size_t part, TagId tag) {
    return sharded ? shard->shards->index(part).Scan(tag)
                   : index_->Scan(tag);
  };

  // --- Cache probe: resume from the deepest cached plan prefix. ---------
  size_t start_step = 0;  ///< First step that still has to execute.
  if (cache_on) {
    Span lookup_span(trace, "cache_lookup");
    for (size_t s = steps.size(); s-- > 0;) {
      const uint64_t key = step_key(s);
      std::shared_ptr<const CachedStepResult> entry;
      const char* tier = "run";
      if (cache->run != nullptr) entry = cache->run->Get(key);
      if (entry == nullptr && cache->shared != nullptr) {
        entry = cache->shared->Get(key);
        tier = "shared";
      }
      if (entry == nullptr) continue;
      // Entries are shared-const; copy so the pipeline can mutate.
      tuples = entry->tuples;
      if (excluding && s >= static_cast<size_t>(dist_step)) {
        // The entry predates some answers (or, if tainted, was filtered
        // against an older, smaller exclusion set — the set only grows
        // within a run); re-filtering against the current set lands on
        // exactly the tuple set an uncached pass would produce.
        drop_excluded(&tuples, &ctr);
      }
      ctr.cache_step_hits += s + 1;
      start_step = s + 1;
      lookup_span.Annotate("cache_hit", tier);
      lookup_span.Annotate("prefix_steps", static_cast<uint64_t>(s + 1));
      lookup_span.Annotate("tuples", static_cast<uint64_t>(tuples.size()));
      break;
    }
  }
  // Stores the tuple set alive after computing step `s` into the enabled
  // tiers (tainted entries — exclusion-filtered at or past the
  // distinguished step — stay run-local; see CachedStepResult).
  auto store_step = [&](size_t s) {
    if (!cache_on) return;
    ++ctr.cache_step_misses;
    auto entry = std::make_shared<CachedStepResult>();
    entry->tuples = tuples;
    entry->tainted = excluding && s >= static_cast<size_t>(dist_step);
    entry->bytes = CachedStepResult::ApproxBytes(entry->tuples);
    const uint64_t key = step_key(s);
    if (cache->run != nullptr) cache->run->Put(key, entry);
    if (cache->shared != nullptr && !entry->tainted) {
      cache->shared->Put(key, std::move(entry));
    }
  };

  // --- Step 0: seed tuples from the first scan list. -------------------
  if (start_step == 0) {
    const PlanStep& step0 = steps[0];
    Span scan_span(trace, "scan_step");
    scan_span.Annotate("step", uint64_t{0});
    scan_span.Annotate("tag", corpus.tags().Name(step0.tag));
    // `sc` pins the list against LRU eviction of merged supertype scans
    // (a plain vector reference would dangle).
    auto seed = [&](const ScanHandle& sc, size_t begin, size_t end,
                    std::vector<Tuple>* out, ExecCounters* c) {
      for (size_t i = begin; i < end; ++i) {
        const NodeRef ref = sc[i];
        ++c->candidates_probed;
        if (!attrs_ok(step0, ref)) continue;
        Tuple t;
        t.bindings.push_back(ref);
        bool ok = true;
        for (const PlanPredicate& pp : step0.preds) {
          // Step-0 predicates are contains predicates on the root variable.
          const bool sat = holds(pp.pred, {}, ref, step_of);
          if (sat) continue;
          if (!pp.optional) {
            ok = false;
            break;
          }
          t.mask |= uint64_t{1} << pp.mask_bit;
          t.penalty += pp.penalty;
        }
        if (!ok) continue;
        if (excluding && dist_step == 0 &&
            cache->exclude->count(ref) != 0) {
          ++c->tuples_excluded;
          continue;
        }
        ++c->tuples_created;
        out->push_back(std::move(t));
      }
    };
    if (!sharded) {
      const ScanHandle scan0 = index_->Scan(step0.tag);
      ChunkedExtend(pool, scan0.size(), /*grain=*/1024, &tuples, &ctr,
                    &worker_cpu_ms,
                    [&](size_t begin, size_t end, std::vector<Tuple>* out,
                        ExecCounters* c) { seed(scan0, begin, end, out, c); });
      DominancePrune(plan.LiveSteps(0), &tuples);
    } else {
      // Scatter: each shard seeds from its own range-restricted scan.
      // Per-shard scan lists partition the global one in document order,
      // so concatenating in shard order reproduces the serial seed list,
      // and the null-live merge restores the one cross-shard prune.
      std::vector<ScanHandle> scans;
      scans.reserve(nshards);
      for (size_t p = 0; p < nshards; ++p) {
        scans.push_back(scan_for(p, step0.tag));
      }
      std::vector<ExecCounters> cs(nshards);
      TaskGroup group(pool);
      for (size_t p = 0; p < nshards; ++p) {
        group.Run([&, p] {
          seed(scans[p], 0, scans[p].size(), &parts[p], &cs[p]);
          DominancePrune(plan.LiveSteps(0), &parts[p]);
        });
      }
      group.Wait();
      worker_cpu_ms += group.WorkerCpuMs();
      for (size_t p = 0; p < nshards; ++p) {
        ctr.Add(cs[p]);
        shard_ctr[p].Add(cs[p]);
      }
      MergeNullLive(plan.LiveSteps(0), &parts);
    }
    store_step(0);
    start_step = 1;
    scan_span.Annotate("candidates", ctr.candidates_probed);
    uint64_t seeded = 0;
    for (const std::vector<Tuple>& ts : parts) seeded += ts.size();
    scan_span.Annotate("tuples_out", seeded);
  }

  // Pruning-threshold helper: the k-th best guaranteed (lower-bound)
  // score among distinct answers, over the union of every part's tuples
  // — the bound is a global quantity even when execution is sharded.
  // Returns -inf when fewer than k distinct answers exist.
  auto prune_bound = [&](size_t s) {
    // The bound must come from distinct *answers*; until the
    // distinguished variable is bound we cannot count answers soundly,
    // so pruning only starts afterwards.
    const std::vector<Tuple>* first = nullptr;
    for (const std::vector<Tuple>& ts : parts) {
      if (!ts.empty()) {
        first = &ts;
        break;
      }
    }
    if (first == nullptr ||
        (*first)[0].bindings.size() <= static_cast<size_t>(dist_step)) {
      return -std::numeric_limits<double>::infinity();
    }
    std::unordered_map<NodeRef, double, NodeRefHash> best_lower;
    const double remaining = plan.MaxRemainingPenalty(s);
    for (const std::vector<Tuple>& ts : parts) {
      for (const Tuple& t : ts) {
        const NodeRef answer = t.bindings[static_cast<size_t>(dist_step)];
        const double lower = plan.base_score() - t.penalty - remaining;
        auto [it, inserted] = best_lower.emplace(answer, lower);
        if (!inserted && lower > it->second) it->second = lower;
      }
    }
    if (best_lower.size() < k) {
      return -std::numeric_limits<double>::infinity();
    }
    std::vector<double> lowers;
    lowers.reserve(best_lower.size());
    for (const auto& [node, lower] : best_lower) lowers.push_back(lower);
    std::nth_element(lowers.begin(), lowers.begin() + static_cast<long>(k - 1),
                     lowers.end(), std::greater<double>());
    return lowers[k - 1];
  };

  // --- Subsequent steps. ------------------------------------------------
  for (size_t s = start_step; s < steps.size(); ++s) {
    const PlanStep& step = steps[s];

    Span step_span(trace, "join_step");
    step_span.Annotate("step", static_cast<uint64_t>(s));
    step_span.Annotate("tag", corpus.tags().Name(step.tag));
    size_t total_in = 0;
    for (const std::vector<Tuple>& ts : parts) total_in += ts.size();
    step_span.Annotate("tuples_in", static_cast<uint64_t>(total_in));
    const uint64_t candidates_before = ctr.candidates_probed;
    const uint64_t pruned_before = ctr.tuples_pruned;

    double bound = -std::numeric_limits<double>::infinity();
    if (prune) bound = prune_bound(s - 1);

    // Extends one tuple through this step into `out`, tallying work into
    // `c` — chunk-local when running under a pool fan-out, so the chunks
    // never contend and their counters fold back in chunk order.
    auto extend = [&](const ScanHandle& scan, const Tuple& t,
                      std::vector<Tuple>* out, ExecCounters* c) {
      const NodeRef anchor =
          t.bindings[static_cast<size_t>(step.anchor_step)];
      bool matched = false;
      // In exact mode a variable absent from the round's query needs no
      // binding at all — probing would be wasted work.
      const bool skip_probe = mode == EvalMode::kExact && step.nullable;
      if (!IsNull(anchor) && !skip_probe) {
        const Element& anchor_el = corpus.node(anchor);
        // Scan entries inside the anchor's interval form a contiguous
        // range beginning right after the anchor itself.
        auto it = std::upper_bound(scan.begin(), scan.end(), anchor);
        for (; it != scan.end(); ++it) {
          if (it->doc != anchor.doc) break;
          const Element& cand_el = corpus.node(*it);
          if (cand_el.start >= anchor_el.end) break;
          ++c->candidates_probed;
          if (step.anchor_parent_only &&
              cand_el.level != anchor_el.level + 1) {
            continue;
          }
          if (!attrs_ok(step, *it)) continue;
          Tuple next = t;
          bool ok = true;
          for (const PlanPredicate& pp : step.preds) {
            if (holds(pp.pred, t.bindings, *it, step_of)) continue;
            if (!pp.optional) {
              ok = false;
              break;
            }
            next.mask |= uint64_t{1} << pp.mask_bit;
            next.penalty += pp.penalty;
          }
          if (!ok) continue;
          matched = true;
          next.bindings.push_back(*it);
          // Incremental DPO: the node this tuple answers for is already
          // in the result — everything downstream of it is wasted work.
          // (`matched` is already set, so the nullable fallback cannot
          // resurrect the tuple.)
          if (excluding && s == static_cast<size_t>(dist_step) &&
              cache->exclude->count(*it) != 0) {
            ++c->tuples_excluded;
            continue;
          }
          if (prune &&
              plan.base_score() - next.penalty + ks_bonus < bound) {
            ++c->tuples_pruned;
            continue;
          }
          ++c->tuples_created;
          out->push_back(std::move(next));
        }
      }
      if (!matched && step.nullable) {
        Tuple next = t;
        next.bindings.push_back(kNullRef);
        for (const PlanPredicate& pp : step.preds) {
          // A nullable step carries only optional predicates, all of
          // which a null binding violates.
          next.mask |= uint64_t{1} << pp.mask_bit;
          next.penalty += pp.penalty;
        }
        if (prune && plan.base_score() - next.penalty + ks_bonus < bound) {
          ++c->tuples_pruned;
          return;
        }
        ++c->tuples_created;
        out->push_back(std::move(next));
      }
    };

    if (!sharded) {
      const ScanHandle scan = index_->Scan(step.tag);  // Pins the list.
      std::vector<Tuple> out;
      if (mode == EvalMode::kHybridBuckets) {
        // Group by violation mask; within a bucket tuples share their
        // score and stay in document order, so per-bucket processing
        // needs no sorting and whole buckets can be skipped against the
        // bound.
        Span bucket_span(trace, "bucket_merge");
        std::map<uint64_t, std::vector<const Tuple*>> buckets;
        for (const Tuple& t : tuples) buckets[t.mask].push_back(&t);
        ctr.buckets_peak =
            std::max<uint64_t>(ctr.buckets_peak, buckets.size());
        uint64_t buckets_skipped = 0;
        // Surviving buckets flatten (in mask order, document order
        // within) into one work list the pool chunks over; the flat
        // order equals the serial per-bucket iteration order, so the
        // chunked merge reproduces it exactly.
        std::vector<const Tuple*> work;
        work.reserve(tuples.size());
        for (const auto& [mask, members] : buckets) {
          const double upper = plan.base_score() - plan.PenaltyOfMask(mask) +
                               ks_bonus;
          if (prune && upper < bound) {
            ctr.tuples_pruned += members.size();
            ++buckets_skipped;
            continue;
          }
          work.insert(work.end(), members.begin(), members.end());
        }
        ChunkedExtend(pool, work.size(), /*grain=*/64, &out, &ctr,
                      &worker_cpu_ms,
                      [&](size_t begin, size_t end, std::vector<Tuple>* o,
                          ExecCounters* c) {
                        // Most tuples survive a step (match or
                        // null-bind), so one-output-per-input is the
                        // right first guess.
                        o->reserve(o->size() + (end - begin));
                        for (size_t i = begin; i < end; ++i) {
                          extend(scan, *work[i], o, c);
                        }
                      });
        bucket_span.Annotate("buckets",
                             static_cast<uint64_t>(buckets.size()));
        bucket_span.Annotate("buckets_skipped", buckets_skipped);
      } else {
        if (mode == EvalMode::kSsoFlat && prune && tuples.size() > k) {
          // SSO's tension: to apply the threshold it sorts the flat tuple
          // list by score, then must restore document order for the next
          // join. Both sorts are real costs we account for.
          Span sort_span(trace, "score_sort");
          sort_span.Annotate("items", static_cast<uint64_t>(tuples.size()));
          std::sort(tuples.begin(), tuples.end(),
                    [](const Tuple& a, const Tuple& b) {
                      return a.penalty < b.penalty;
                    });
          ++ctr.score_sorts;
          ctr.score_sorted_items += tuples.size();
          std::sort(tuples.begin(), tuples.end(),
                    [](const Tuple& a, const Tuple& b) {
                      return a.bindings < b.bindings;
                    });
          ++ctr.score_sorts;
          ctr.score_sorted_items += tuples.size();
        }
        ChunkedExtend(pool, tuples.size(), /*grain=*/64, &out, &ctr,
                      &worker_cpu_ms,
                      [&](size_t begin, size_t end, std::vector<Tuple>* o,
                          ExecCounters* c) {
                        o->reserve(o->size() + (end - begin));
                        for (size_t i = begin; i < end; ++i) {
                          extend(scan, tuples[i], o, c);
                        }
                      });
      }
      DominancePrune(plan.LiveSteps(s), &out);
      tuples = std::move(out);
    } else {
      // Scatter: one task per shard joins its own tuples against its own
      // scan. The threshold bound above is global (union of all shards),
      // so every per-tuple keep/prune decision matches the serial run;
      // per-shard relative order equals the serial list's order
      // restricted to that shard, which is all DominancePrune's
      // first-seen tie-breaks ever look at.
      std::vector<ScanHandle> scans;
      scans.reserve(nshards);
      for (size_t p = 0; p < nshards; ++p) {
        scans.push_back(scan_for(p, step.tag));
      }
      // The SSO sort is a phase-level event: the serial run sorts once
      // when the *global* list outgrows k, so the sharded run gates on
      // the global size and books one sort pair, not one per shard.
      const bool sso_sort =
          mode == EvalMode::kSsoFlat && prune && total_in > k;
      std::vector<size_t> in_sizes(nshards);
      for (size_t p = 0; p < nshards; ++p) in_sizes[p] = parts[p].size();
      std::vector<std::vector<Tuple>> outs(nshards);
      std::vector<ExecCounters> cs(nshards);
      std::vector<std::vector<uint64_t>> shard_masks(nshards);
      TaskGroup group(pool);
      for (size_t p = 0; p < nshards; ++p) {
        group.Run([&, p] {
          std::vector<Tuple>& in = parts[p];
          std::vector<Tuple>* out = &outs[p];
          ExecCounters* c = &cs[p];
          if (mode == EvalMode::kHybridBuckets) {
            // Per-shard buckets: the skip criterion (mask upper bound
            // vs the global threshold) is a pure function of the mask,
            // so a bucket is skipped here iff the serial run skips it.
            std::map<uint64_t, std::vector<const Tuple*>> buckets;
            for (const Tuple& t : in) buckets[t.mask].push_back(&t);
            shard_masks[p].reserve(buckets.size());
            for (const auto& [mask, members] : buckets) {
              shard_masks[p].push_back(mask);
              const double upper = plan.base_score() -
                                   plan.PenaltyOfMask(mask) + ks_bonus;
              if (prune && upper < bound) {
                c->tuples_pruned += members.size();
                continue;
              }
              for (const Tuple* t : members) extend(scans[p], *t, out, c);
            }
          } else {
            if (sso_sort) {
              std::sort(in.begin(), in.end(),
                        [](const Tuple& a, const Tuple& b) {
                          return a.penalty < b.penalty;
                        });
              std::sort(in.begin(), in.end(),
                        [](const Tuple& a, const Tuple& b) {
                          return a.bindings < b.bindings;
                        });
            }
            out->reserve(in.size());
            for (const Tuple& t : in) extend(scans[p], t, out, c);
          }
          DominancePrune(plan.LiveSteps(s), out);
          parts[p] = std::move(*out);
        });
      }
      group.Wait();
      worker_cpu_ms += group.WorkerCpuMs();
      for (size_t p = 0; p < nshards; ++p) {
        ctr.Add(cs[p]);
        shard_ctr[p].Add(cs[p]);
      }
      if (sso_sort) {
        ctr.score_sorts += 2;
        ctr.score_sorted_items += 2 * total_in;
        for (size_t p = 0; p < nshards; ++p) {
          shard_ctr[p].score_sorts += 2;
          shard_ctr[p].score_sorted_items += 2 * in_sizes[p];
        }
      }
      if (mode == EvalMode::kHybridBuckets) {
        // buckets_peak counts *distinct* masks alive in the step — a
        // global quantity, so the per-shard mask sets union before the
        // max (two shards holding the same mask are one bucket's worth
        // of score-homogeneity, not two).
        std::set<uint64_t> all_masks;
        for (size_t p = 0; p < nshards; ++p) {
          all_masks.insert(shard_masks[p].begin(), shard_masks[p].end());
          shard_ctr[p].buckets_peak = std::max<uint64_t>(
              shard_ctr[p].buckets_peak, shard_masks[p].size());
        }
        ctr.buckets_peak =
            std::max<uint64_t>(ctr.buckets_peak, all_masks.size());
      }
      MergeNullLive(plan.LiveSteps(s), &parts);
    }
    store_step(s);
    step_span.Annotate("candidates", ctr.candidates_probed - candidates_before);
    step_span.Annotate("pruned", ctr.tuples_pruned - pruned_before);
    size_t total_out = 0;
    for (const std::vector<Tuple>& ts : parts) total_out += ts.size();
    step_span.Annotate("tuples_out", static_cast<uint64_t>(total_out));
  }

  // --- Finalize: keyword scores, dedup, sort. ---------------------------
  Span finalize_span(trace, "finalize");
  {
    size_t total = 0;
    for (const std::vector<Tuple>& ts : parts) total += ts.size();
    finalize_span.Annotate("tuples", static_cast<uint64_t>(total));
  }
  // Scores one part's tuples, dedups by distinguished node (best score
  // kept, first-seen on exact ties) and sorts best-first. Shards hold
  // disjoint documents and answers are document-local, so per-part
  // finalize needs no cross-part dedup and the part lists merge by rank.
  auto finalize_part = [&](const std::vector<Tuple>& ts) {
    std::unordered_map<NodeRef, AnswerScore, NodeRefHash> best;
    for (const Tuple& t : ts) {
      AnswerScore score;
      score.ss = mode == EvalMode::kExact
                     ? plan.base_score() - exact_penalty
                     : plan.base_score() - t.penalty;
      score.ks = 0.0;
      for (const JoinPlan::ContainsChain& chain : plan.contains_chains()) {
        auto res_it = contains_results.find(chain.expr.ToString());
        if (res_it == contains_results.end()) continue;
        const ContainsResult* result = res_it->second.get();
        for (int cs : chain.chain_steps) {
          const NodeRef b = t.bindings[static_cast<size_t>(cs)];
          if (IsNull(b)) continue;
          if (result->Satisfies(b)) {
            score.ks += chain.weight * result->BestScoreWithin(b);
            break;
          }
        }
      }
      const NodeRef answer = t.bindings[static_cast<size_t>(dist_step)];
      assert(!IsNull(answer) && "distinguished variable must be bound");
      auto [it, inserted] = best.emplace(answer, score);
      if (!inserted && RanksBefore(score, it->second, scheme)) {
        it->second = score;
      }
    }
    std::vector<RankedAnswer> part_answers;
    part_answers.reserve(best.size());
    for (const auto& [node, score] : best) {
      part_answers.push_back(RankedAnswer{node, score});
    }
    std::sort(part_answers.begin(), part_answers.end(),
              [&](const RankedAnswer& a, const RankedAnswer& b) {
                if (RanksBefore(a.score, b.score, scheme)) return true;
                if (RanksBefore(b.score, a.score, scheme)) return false;
                return a.node < b.node;  // deterministic tie-break
              });
    return part_answers;
  };

  std::vector<RankedAnswer> answers;
  if (!sharded) {
    answers = finalize_part(tuples);
  } else {
    // Gather: per-shard finalize, K'-truncate where sound, then the
    // coordinator's rank merge with score-threshold early termination —
    // it stops pulling once k answers are out, and everything cut on
    // either side lands in the discard seam for the property tests.
    std::vector<std::vector<RankedAnswer>> per_shard(nshards);
    for (size_t p = 0; p < nshards; ++p) {
      per_shard[p] = finalize_part(parts[p]);
    }
    // K'-truncation is licensed by the certificate's truncation-safety
    // verdict (FX303); without it every per-shard answer travels whole.
    const size_t kprime =
        ShardKPrime(k, /*single_pass=*/use_optionals,
                    cert != nullptr && cert->truncation_safe.holds);
    for (size_t p = 0; p < nshards; ++p) {
      if (per_shard[p].size() > kprime) {
        if (shard->discarded != nullptr) {
          shard->discarded->insert(
              shard->discarded->end(),
              per_shard[p].begin() + static_cast<long>(kprime),
              per_shard[p].end());
        }
        per_shard[p].resize(kprime);
      }
    }
    ShardMergeStats mstats;
    mstats.collect_discarded = shard->discarded != nullptr;
    const size_t cap =
        kprime == std::numeric_limits<size_t>::max() ? 0 : k;
    answers = MergeShardAnswers(per_shard, cap, scheme, &mstats);
    if (shard->discarded != nullptr) {
      shard->discarded->insert(shard->discarded->end(),
                               mstats.discarded.begin(),
                               mstats.discarded.end());
    }
  }
  finalize_span.Annotate("answers", static_cast<uint64_t>(answers.size()));
  finalize_span.Close();

  if (sharded && shard->per_shard_counters != nullptr) {
    *shard->per_shard_counters = std::move(shard_ctr);
  }
  if (counters != nullptr) counters->Add(ctr);
  if (usage != nullptr) {
    ResourceUsage u = UsageFromCounters(ctr);
    u.cpu_ms = worker_cpu_ms;
    usage->Add(u);
  }
  // Mirror the work into the process-wide registry (pointers cached once;
  // one relaxed add per field per plan pass).
  static MetricsRegistry& reg = MetricsRegistry::Global();
  static Counter* m_passes = reg.counter("exec.plan_passes");
  static Counter* m_probed = reg.counter("exec.candidates_probed");
  static Counter* m_created = reg.counter("exec.tuples_created");
  static Counter* m_pruned = reg.counter("exec.tuples_pruned");
  static Counter* m_sorts = reg.counter("exec.score_sorts");
  static Counter* m_sorted = reg.counter("exec.score_sorted_items");
  static Gauge* m_buckets = reg.gauge("exec.buckets_peak");
  static Counter* m_cache_hits = reg.counter("exec.cache_step_hits");
  static Counter* m_cache_misses = reg.counter("exec.cache_step_misses");
  static Counter* m_excluded = reg.counter("exec.tuples_excluded");
  m_passes->Inc(ctr.plan_passes);
  m_probed->Inc(ctr.candidates_probed);
  m_created->Inc(ctr.tuples_created);
  m_pruned->Inc(ctr.tuples_pruned);
  m_sorts->Inc(ctr.score_sorts);
  m_sorted->Inc(ctr.score_sorted_items);
  m_buckets->Max(static_cast<int64_t>(ctr.buckets_peak));
  m_cache_hits->Inc(ctr.cache_step_hits);
  m_cache_misses->Inc(ctr.cache_step_misses);
  m_excluded->Inc(ctr.tuples_excluded);
  return answers;
}

}  // namespace flexpath
