#include "exec/naive_evaluator.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace flexpath {

namespace {

/// True iff the sorted set `nodes` has an element strictly inside
/// `anc`'s interval satisfying the axis relative to `anc`.
bool HasRelated(const Corpus& corpus, const std::vector<NodeRef>& nodes,
                NodeRef anc, Axis axis) {
  const Element& a = corpus.node(anc);
  auto it = std::upper_bound(nodes.begin(), nodes.end(), anc);
  for (; it != nodes.end(); ++it) {
    if (it->doc != anc.doc) break;
    const Element& e = corpus.node(*it);
    if (e.start >= a.end) break;
    if (axis == Axis::kDescendant) return true;
    if (e.level == a.level + 1) return true;
  }
  return false;
}

/// True iff some element of sorted `parents` is an ancestor (or parent,
/// per axis) of `node`.
bool HasUpward(const Corpus& corpus, const std::vector<NodeRef>& parents,
               NodeRef node, Axis axis) {
  const Document& doc = corpus.doc(node.doc);
  if (axis == Axis::kChild) {
    const NodeId p = doc.node(node.node).parent;
    if (p == kInvalidNode) return false;
    return std::binary_search(parents.begin(), parents.end(),
                              NodeRef{node.doc, p});
  }
  for (NodeId p = doc.node(node.node).parent; p != kInvalidNode;
       p = doc.node(p).parent) {
    if (std::binary_search(parents.begin(), parents.end(),
                           NodeRef{node.doc, p})) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<NodeRef> NaiveEvaluate(const ElementIndex& index, const Tpq& q,
                                   IrEngine* ir) {
  const Corpus& corpus = index.corpus();
  if (q.empty()) return {};

  // Downward match sets, computed for children before parents. Vars() is
  // in insertion order with parents first, so iterate in reverse.
  std::map<VarId, std::vector<NodeRef>> down;
  std::vector<VarId> vars = q.Vars();
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    const VarId v = *it;
    const TpqNode& n = q.node(v);
    std::vector<NodeRef> set;
    // Candidate elements by tag (or every element for a wildcard).
    auto consider = [&](NodeRef ref) {
      const Element& e = corpus.node(ref);
      for (const AttrPred& ap : n.attr_preds) {
        const std::string* val = corpus.doc(ref.doc).FindAttribute(
            ref.node, ap.attr);
        if (val == nullptr || !ap.Matches(*val)) return;
      }
      for (const FtExpr& expr : n.contains) {
        assert(ir != nullptr && "query has contains but no IR engine");
        if (!ir->Evaluate(expr)->Satisfies(ref)) return;
      }
      for (VarId c : q.Children(v)) {
        if (!HasRelated(corpus, down[c], ref, q.AxisOf(c))) return;
      }
      (void)e;
      set.push_back(ref);
    };
    if (n.tag != kInvalidTag) {
      for (NodeRef ref : index.Scan(n.tag)) consider(ref);
    } else {
      for (DocId d = 0; d < corpus.size(); ++d) {
        for (NodeId i = 0; i < corpus.doc(d).size(); ++i) {
          consider(NodeRef{d, i});
        }
      }
    }
    down[v] = std::move(set);
  }

  // Top-down validity: a node matches var v in a full match iff it is in
  // down[v] and has a valid parent-var element above it.
  std::map<VarId, std::vector<NodeRef>> valid;
  for (VarId v : vars) {
    const VarId parent = q.Parent(v);
    if (parent == kInvalidVar) {
      valid[v] = down[v];
      continue;
    }
    std::vector<NodeRef> set;
    for (NodeRef ref : down[v]) {
      if (HasUpward(corpus, valid[parent], ref, q.AxisOf(v))) {
        set.push_back(ref);
      }
    }
    valid[v] = std::move(set);
  }
  return valid[q.distinguished()];
}

}  // namespace flexpath
