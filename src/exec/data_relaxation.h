#ifndef FLEXPATH_EXEC_DATA_RELAXATION_H_
#define FLEXPATH_EXEC_DATA_RELAXATION_H_

#include <cstdint>
#include <vector>

#include "common/resource_usage.h"
#include "ir/engine.h"
#include "query/tpq.h"
#include "xml/corpus.h"

namespace flexpath {

/// The third evaluation strategy for approximate XML queries surveyed in
/// Section 7: *data relaxation* (APPROXML [14]) — instead of relaxing the
/// query, relax the data by "computing a closure of the document graph,
/// inserting shortcut edges between each pair of nodes in the same
/// path". Exact parent-child queries over the relaxed graph then behave
/// like fully axis-generalized queries.
///
/// The paper dismisses the strategy because it "was shown to quickly
/// fail with large databases": the shortcut closure holds one edge per
/// ancestor-descendant pair, i.e. Θ(N · depth) edges, against the
/// original tree's N − 1. This class implements the strategy faithfully
/// (materialized closure + evaluation over it) so the bench suite can
/// quantify that cost against FleXPath's query-side relaxation.
class DataRelaxationIndex {
 public:
  /// Materializes the shortcut closure of every document in `corpus`
  /// (which must outlive the index).
  explicit DataRelaxationIndex(const Corpus* corpus);

  DataRelaxationIndex(const DataRelaxationIndex&) = delete;
  DataRelaxationIndex& operator=(const DataRelaxationIndex&) = delete;

  /// Total shortcut edges materialized.
  uint64_t edge_count() const { return edge_count_; }

  /// Approximate bytes held by the closure (edges only).
  uint64_t ApproxBytes() const {
    return edge_count_ * sizeof(NodeId) + offsets_bytes_;
  }

  /// The shortcut children of `node` — its proper descendants, as an
  /// explicit edge list (sorted by node id).
  const NodeId* EdgesBegin(NodeRef node) const;
  const NodeId* EdgesEnd(NodeRef node) const;

  /// Evaluates `q` over the relaxed graph: every pattern edge (pc or ad)
  /// matches a shortcut edge, so the result equals the fully
  /// axis-generalized query's answers. `ir` may be null when the query
  /// has no contains predicates.
  ///
  /// `usage`, when non-null, accumulates the evaluation's cost (nodes
  /// examined as scanned, match-set entries kept as produced, shortcut
  /// edges probed in the byte estimate) — the accounting the ablation
  /// bench uses to put numbers on the paper's "fails with large
  /// databases" verdict.
  std::vector<NodeRef> Evaluate(const Tpq& q, IrEngine* ir,
                                ResourceUsage* usage = nullptr) const;

 private:
  const Corpus* corpus_;
  /// Per document: flat edge array plus per-node offsets into it.
  std::vector<std::vector<NodeId>> edges_;
  std::vector<std::vector<size_t>> offsets_;
  uint64_t edge_count_ = 0;
  uint64_t offsets_bytes_ = 0;
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_DATA_RELAXATION_H_
