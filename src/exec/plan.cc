#include "exec/plan.h"

#include <algorithm>
#include <map>

#include "common/hash.h"

namespace flexpath {

Result<JoinPlan> JoinPlan::Build(const Tpq& original, const Tpq& relaxed,
                                 const std::set<Predicate>& dropped,
                                 const PenaltyModel& pm, const Weights& w) {
  JoinPlan plan;
  plan.original_ = original;
  plan.base_score_ = BaseStructuralScore(original, w);

  // Step order: original variables, parents before children (Vars() is in
  // insertion order, which AddChild guarantees is top-down).
  const std::vector<VarId> vars = original.Vars();
  std::map<VarId, int> step_of;
  for (size_t i = 0; i < vars.size(); ++i) {
    step_of[vars[i]] = static_cast<int>(i);
  }
  plan.distinguished_step_ = step_of.at(original.distinguished());

  const LogicalQuery required = ToLogical(relaxed);

  // Assign mask bits to droppable (non-tag) dropped predicates.
  std::map<Predicate, int> bit_of;
  for (const Predicate& p : dropped) {
    if (p.kind == PredKind::kTag) continue;
    bit_of.emplace(p, static_cast<int>(plan.bit_penalties_.size()));
    plan.bit_penalties_.push_back(pm.Of(p));
  }
  if (plan.bit_penalties_.size() > 64) {
    return Status::InvalidArgument(
        "more than 64 relaxed predicates encoded in one plan");
  }

  plan.steps_.resize(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    PlanStep& step = plan.steps_[i];
    step.var = vars[i];
    step.tag = original.node(vars[i]).tag;
    if (step.tag == kInvalidTag) {
      return Status::Unimplemented(
          "wildcard (*) steps are not supported by the join-plan engine; "
          "use NaiveEvaluate for wildcard patterns");
    }
    step.attr_preds = original.node(vars[i]).attr_preds;
    step.nullable = !relaxed.HasVar(vars[i]);

    // Anchor: the variable's parent in the relaxed query, or the plan
    // root when the variable was deleted from it.
    if (i == 0) {
      step.anchor_step = -1;
    } else if (!step.nullable) {
      const VarId rparent = relaxed.Parent(vars[i]);
      if (rparent == kInvalidVar || step_of.count(rparent) == 0) {
        return Status::Internal("relaxed query lost a parent edge");
      }
      step.anchor_step = step_of.at(rparent);
      if (step.anchor_step >= static_cast<int>(i)) {
        return Status::Internal("plan anchor is not bound yet");
      }
      step.anchor_parent_only = relaxed.AxisOf(vars[i]) == Axis::kChild;
    } else {
      step.anchor_step = 0;
      step.anchor_parent_only = false;
    }
  }

  // Required predicates (tree edges and contains of the relaxed query):
  // attach each to the step of its later-bound variable.
  for (const Predicate& p : required.preds) {
    if (p.kind == PredKind::kTag) continue;  // implicit in the scan list
    int at;
    if (p.kind == PredKind::kContains) {
      if (step_of.count(p.x) == 0) continue;
      at = step_of.at(p.x);
    } else {
      if (step_of.count(p.x) == 0 || step_of.count(p.y) == 0) {
        return Status::Internal("relaxed predicate over unknown variable");
      }
      at = std::max(step_of.at(p.x), step_of.at(p.y));
    }
    plan.steps_[static_cast<size_t>(at)].preds.push_back(
        PlanPredicate{p, /*optional=*/false, 0.0, -1});
  }

  // Optional (dropped) predicates, with penalties and mask bits.
  for (const Predicate& p : dropped) {
    if (p.kind == PredKind::kTag) continue;
    int at;
    if (p.kind == PredKind::kContains) {
      if (step_of.count(p.x) == 0) continue;
      at = step_of.at(p.x);
    } else {
      at = std::max(step_of.at(p.x), step_of.at(p.y));
    }
    plan.steps_[static_cast<size_t>(at)].preds.push_back(
        PlanPredicate{p, /*optional=*/true, pm.Of(p), bit_of.at(p)});
  }

  // Max remaining penalty per step (for threshold pruning).
  plan.remaining_after_step_.assign(vars.size() + 1, 0.0);
  for (size_t i = vars.size(); i-- > 0;) {
    double here = 0.0;
    for (const PlanPredicate& p : plan.steps_[i].preds) {
      if (p.optional) here += p.penalty;
    }
    plan.remaining_after_step_[i] = plan.remaining_after_step_[i + 1] + here;
  }

  // Keyword scoring chains: one per original contains predicate.
  for (VarId v : vars) {
    for (const FtExpr& e : original.node(v).contains) {
      ContainsChain chain;
      chain.expr = e;
      chain.weight = w.Of(Predicate::Contains(v, e));
      for (VarId cur = v; cur != kInvalidVar;
           cur = plan.original_.Parent(cur)) {
        chain.chain_steps.push_back(step_of.at(cur));
      }
      plan.max_keyword_score_ += chain.weight;
      plan.contains_chains_.push_back(std::move(chain));
    }
  }

  // Live-step sets for dominance pruning: after step s, a binding matters
  // iff some predicate of a later step references its variable, a keyword
  // chain references it, or it is the distinguished step.
  std::set<int> always_live;
  always_live.insert(plan.distinguished_step_);
  for (const ContainsChain& chain : plan.contains_chains_) {
    for (int cs : chain.chain_steps) always_live.insert(cs);
  }
  plan.live_after_step_.resize(vars.size());
  std::set<int> live = always_live;
  for (size_t s = vars.size(); s-- > 0;) {
    // Bindings needed strictly after step s: the accumulated set (from
    // later steps) — step s+1's own anchor and predicate references.
    if (s + 1 < vars.size()) {
      const PlanStep& next = plan.steps_[s + 1];
      live.insert(next.anchor_step);
      for (const PlanPredicate& pp : next.preds) {
        if (pp.pred.kind == PredKind::kPc ||
            pp.pred.kind == PredKind::kAd) {
          live.insert(step_of.at(pp.pred.x));
          live.insert(step_of.at(pp.pred.y));
        } else if (pp.pred.kind == PredKind::kContains) {
          live.insert(step_of.at(pp.pred.x));
        }
      }
    }
    for (int l : live) {
      if (l <= static_cast<int>(s)) {
        plan.live_after_step_[s].push_back(l);
      }
    }
  }

  // Step fingerprints (see step_fingerprint in the header). The chain
  // seeds with the plan-level fields the evaluator's pruning bound and
  // scoring read, then folds in each step's full definition in order.
  uint64_t h = 0x666c657850617468ULL;  // "flexPath"
  h = HashCombine(h, plan.base_score_);
  h = HashCombine(h, plan.max_keyword_score_);
  h = HashCombine(h, static_cast<uint64_t>(plan.distinguished_step_));
  plan.step_fp_.reserve(plan.steps_.size());
  for (size_t s = 0; s < plan.steps_.size(); ++s) {
    const PlanStep& step = plan.steps_[s];
    h = HashCombine(h, static_cast<uint64_t>(step.var));
    h = HashCombine(h, static_cast<uint64_t>(step.tag));
    h = HashCombine(h, static_cast<uint64_t>(step.anchor_step));
    h = HashCombine(h, static_cast<uint64_t>(step.anchor_parent_only));
    h = HashCombine(h, static_cast<uint64_t>(step.nullable));
    for (const AttrPred& ap : step.attr_preds) {
      h = HashCombine(h, static_cast<uint64_t>(ap.attr));
      h = HashCombine(h, static_cast<uint64_t>(ap.op));
      h = HashCombine(h, std::string_view(ap.value));
    }
    for (const PlanPredicate& pp : step.preds) {
      h = HashCombine(h, static_cast<uint64_t>(pp.pred.kind));
      h = HashCombine(h, static_cast<uint64_t>(pp.pred.x));
      h = HashCombine(h, static_cast<uint64_t>(pp.pred.y));
      h = HashCombine(h, static_cast<uint64_t>(pp.pred.tag));
      h = HashCombine(h, std::string_view(pp.pred.expr_key));
      h = HashCombine(h, static_cast<uint64_t>(pp.optional));
      h = HashCombine(h, pp.penalty);
      h = HashCombine(h, static_cast<uint64_t>(pp.mask_bit));
    }
    for (int l : plan.live_after_step_[s]) {
      h = HashCombine(h, static_cast<uint64_t>(l));
    }
    plan.step_fp_.push_back(h);
  }

  return plan;
}

double JoinPlan::PenaltyOfMask(uint64_t mask) const {
  double total = 0.0;
  while (mask != 0) {
    const int bit = __builtin_ctzll(mask);
    total += bit_penalties_[static_cast<size_t>(bit)];
    mask &= mask - 1;
  }
  return total;
}

double JoinPlan::MaxRemainingPenalty(size_t step) const {
  const size_t idx = std::min(step + 1, remaining_after_step_.size() - 1);
  return remaining_after_step_[idx];
}

}  // namespace flexpath
