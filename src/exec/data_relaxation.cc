#include "exec/data_relaxation.h"

#include <algorithm>
#include <map>

namespace flexpath {

DataRelaxationIndex::DataRelaxationIndex(const Corpus* corpus)
    : corpus_(corpus) {
  edges_.resize(corpus_->size());
  offsets_.resize(corpus_->size());
  for (DocId d = 0; d < corpus_->size(); ++d) {
    const Document& doc = corpus_->doc(d);
    std::vector<NodeId>& edges = edges_[d];
    std::vector<size_t>& offsets = offsets_[d];
    offsets.resize(doc.size() + 1, 0);
    // Pre-order gives each node a contiguous descendant range; the
    // closure still materializes every pair explicitly — that is the
    // strategy's cost, which we reproduce on purpose.
    for (NodeId n = 0; n < doc.size(); ++n) {
      offsets[n] = edges.size();
      const Element& e = doc.node(n);
      for (NodeId m = n + 1; m < doc.size() && doc.node(m).start < e.end;
           ++m) {
        edges.push_back(m);
      }
    }
    offsets[doc.size()] = edges.size();
    edge_count_ += edges.size();
    offsets_bytes_ += offsets.size() * sizeof(size_t);
  }
}

const NodeId* DataRelaxationIndex::EdgesBegin(NodeRef node) const {
  return edges_[node.doc].data() + offsets_[node.doc][node.node];
}

const NodeId* DataRelaxationIndex::EdgesEnd(NodeRef node) const {
  return edges_[node.doc].data() + offsets_[node.doc][node.node + 1];
}

std::vector<NodeRef> DataRelaxationIndex::Evaluate(
    const Tpq& q, IrEngine* ir, ResourceUsage* usage) const {
  if (q.empty()) return {};
  const ThreadCpuTimer cpu;
  uint64_t scanned = 0;
  uint64_t edges_probed = 0;
  // Downward match sets over the shortcut graph (children before
  // parents), then a top-down validity pass — the naive evaluator's
  // scheme, but every pattern edge matches a shortcut edge.
  std::map<VarId, std::vector<NodeRef>> down;
  const std::vector<VarId> vars = q.Vars();
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    const VarId v = *it;
    const TpqNode& n = q.node(v);
    std::vector<NodeRef> set;
    for (DocId d = 0; d < corpus_->size(); ++d) {
      const Document& doc = corpus_->doc(d);
      for (NodeId i = 0; i < doc.size(); ++i) {
        ++scanned;
        if (n.tag != kInvalidTag && doc.node(i).tag != n.tag) continue;
        const NodeRef ref{d, i};
        bool ok = true;
        for (const AttrPred& ap : n.attr_preds) {
          const std::string* val = doc.FindAttribute(i, ap.attr);
          if (val == nullptr || !ap.Matches(*val)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const FtExpr& expr : n.contains) {
          if (ir == nullptr || !ir->Evaluate(expr)->Satisfies(ref)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (VarId c : q.Children(v)) {
          const std::vector<NodeRef>& child_set = down[c];
          // Probe the shortcut edge list against the child match set.
          bool found = false;
          for (const NodeId* edge = EdgesBegin(ref); edge != EdgesEnd(ref);
               ++edge) {
            ++edges_probed;
            if (std::binary_search(child_set.begin(), child_set.end(),
                                   NodeRef{d, *edge})) {
              found = true;
              break;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (ok) set.push_back(ref);
      }
    }
    down[v] = std::move(set);
  }

  // Top-down validity.
  std::map<VarId, std::vector<NodeRef>> valid;
  for (VarId v : vars) {
    const VarId parent = q.Parent(v);
    if (parent == kInvalidVar) {
      valid[v] = down[v];
      continue;
    }
    std::vector<NodeRef> set;
    const std::vector<NodeRef>& parents = valid[parent];
    for (NodeRef ref : down[v]) {
      // Some valid parent must have a shortcut edge to ref — i.e. be a
      // proper ancestor in the same document.
      bool found = false;
      for (NodeRef p : parents) {
        if (p.doc == ref.doc &&
            corpus_->doc(p.doc).IsAncestor(p.node, ref.node)) {
          found = true;
          break;
        }
      }
      if (found) set.push_back(ref);
    }
    valid[v] = std::move(set);
  }
  std::vector<NodeRef>& answers = valid[q.distinguished()];
  if (usage != nullptr) {
    uint64_t produced = 0;
    for (const auto& [v, set] : down) produced += set.size();
    usage->tuples_scanned += scanned;
    usage->tuples_produced += produced;
    usage->bytes_touched += scanned * sizeof(Element) +
                            edges_probed * sizeof(NodeId) +
                            produced * sizeof(NodeRef);
    usage->cpu_ms += cpu.ElapsedMs();
  }
  return answers;
}

}  // namespace flexpath
