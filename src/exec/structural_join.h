#ifndef FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
#define FLEXPATH_EXEC_STRUCTURAL_JOIN_H_

#include <vector>

#include "common/thread_pool.h"
#include "xml/corpus.h"

namespace flexpath {

/// An (ancestor, descendant) pair produced by a structural join.
struct JoinPair {
  NodeRef anc;
  NodeRef desc;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

/// Stack-based structural join (Stack-Tree of Al-Khalifa et al. [1], the
/// primitive the paper's join plans are built from). Inputs must be
/// sorted in global document order — which ElementIndex::Scan lists are
/// by construction. Output is sorted by (desc, anc).
///
/// `parent_only` restricts output to parent-child pairs (the pc predicate);
/// otherwise all ancestor-descendant pairs are produced.
std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only);

/// Parallel variant: splits the descendant list into contiguous chunks,
/// joins each against the ancestor list on the pool (each chunk rebuilds
/// its ancestor stack from the list's prefix), and concatenates per-chunk
/// outputs in chunk order. A descendant's pairs depend only on the
/// ancestors containing it, so the result — including pair order — is
/// identical to the serial join at any thread count. Null `pool` (or one
/// too small to help) falls through to the serial join.
std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only, ThreadPool* pool);

/// Naive O(|A| * |D|) reference implementation, used by tests and the
/// ablation benchmark as the baseline the stack join is measured against.
std::vector<JoinPair> NestedLoopJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only);

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
