#ifndef FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
#define FLEXPATH_EXEC_STRUCTURAL_JOIN_H_

#include <vector>

#include "xml/corpus.h"

namespace flexpath {

/// An (ancestor, descendant) pair produced by a structural join.
struct JoinPair {
  NodeRef anc;
  NodeRef desc;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

/// Stack-based structural join (Stack-Tree of Al-Khalifa et al. [1], the
/// primitive the paper's join plans are built from). Inputs must be
/// sorted in global document order — which ElementIndex::Scan lists are
/// by construction. Output is sorted by (desc, anc).
///
/// `parent_only` restricts output to parent-child pairs (the pc predicate);
/// otherwise all ancestor-descendant pairs are produced.
std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only);

/// Naive O(|A| * |D|) reference implementation, used by tests and the
/// ablation benchmark as the baseline the stack join is measured against.
std::vector<JoinPair> NestedLoopJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only);

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
