#ifndef FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
#define FLEXPATH_EXEC_STRUCTURAL_JOIN_H_

#include <vector>

#include "common/resource_usage.h"
#include "common/thread_pool.h"
#include "xml/corpus.h"

namespace flexpath {

/// An (ancestor, descendant) pair produced by a structural join.
struct JoinPair {
  NodeRef anc;
  NodeRef desc;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

/// Stack-based structural join (Stack-Tree of Al-Khalifa et al. [1], the
/// primitive the paper's join plans are built from). Inputs must be
/// sorted in global document order — which ElementIndex::Scan lists are
/// by construction. Output is sorted by (desc, anc).
///
/// `parent_only` restricts output to parent-child pairs (the pc predicate);
/// otherwise all ancestor-descendant pairs are produced.
///
/// `usage`, when non-null, accumulates what the join consumed: every
/// input element examined counts as scanned, every emitted pair as
/// produced, bytes estimated from both. The parallel variant adds the
/// thread-CPU time its chunks burned on pool workers (the calling
/// thread's CPU stays the caller's to measure) — and note the parallel
/// join's scan count exceeds the serial one's, because each chunk replays
/// the ancestor prefix to rebuild its stack: usage reports work actually
/// done, not a thread-count-invariant quantity like ExecCounters.
std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only,
                                     ResourceUsage* usage = nullptr);

/// Parallel variant: splits the descendant list into contiguous chunks,
/// joins each against the ancestor list on the pool (each chunk rebuilds
/// its ancestor stack from the list's prefix), and concatenates per-chunk
/// outputs in chunk order. A descendant's pairs depend only on the
/// ancestors containing it, so the result — including pair order — is
/// identical to the serial join at any thread count. Null `pool` (or one
/// too small to help) falls through to the serial join.
std::vector<JoinPair> StructuralJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only, ThreadPool* pool,
                                     ResourceUsage* usage = nullptr);

/// Naive O(|A| * |D|) reference implementation, used by tests and the
/// ablation benchmark as the baseline the stack join is measured against.
std::vector<JoinPair> NestedLoopJoin(const Corpus& corpus,
                                     const std::vector<NodeRef>& ancestors,
                                     const std::vector<NodeRef>& descendants,
                                     bool parent_only);

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_STRUCTURAL_JOIN_H_
