#ifndef FLEXPATH_EXEC_SELECTIVITY_H_
#define FLEXPATH_EXEC_SELECTIVITY_H_

#include "ir/engine.h"
#include "query/tpq.h"
#include "stats/document_stats.h"

namespace flexpath {

/// The paper's selectivity estimator (Section 6): intensive
/// pre-processing collects node/edge counts (DocumentStats); estimation
/// assumes a uniform, location-independent distribution of elements — "if
/// 60% of A's have a B child, estimate C/A/B as 0.6 times C/A". SSO uses
/// the estimates to decide how many relaxations to encode before
/// evaluating anything.
class SelectivityEstimator {
 public:
  /// `stats` must outlive the estimator. `ir` may be null; contains
  /// predicates are then ignored by the estimate (over-estimation, which
  /// SSO's restart loop tolerates).
  SelectivityEstimator(const DocumentStats* stats, IrEngine* ir)
      : stats_(stats), ir_(ir) {}

  /// Estimated number of answers (distinguished-node matches) of `q`:
  ///   #(tag(dist)) * Π_edges frac(edge) * Π_contains frac(contains)
  /// where frac is the existence fraction of the edge type between the
  /// two tags (PcFraction / AdFraction) and, for contains($x, E), the
  /// fraction of tag(x)-elements whose subtree satisfies E.
  double EstimateAnswers(const Tpq& q);

 private:
  const DocumentStats* stats_;
  IrEngine* ir_;
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_SELECTIVITY_H_
