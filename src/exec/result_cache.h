#ifndef FLEXPATH_EXEC_RESULT_CACHE_H_
#define FLEXPATH_EXEC_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/lru_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "xml/corpus.h"

namespace flexpath {

/// One intermediate tuple of the join pipeline: the bindings of the plan
/// steps evaluated so far, plus the violation mask / penalty accumulated
/// from optional predicates. Lives here (rather than inside evaluator.cc)
/// so cached step results can be shared between runs.
struct ExecTuple {
  std::vector<NodeRef> bindings;
  uint64_t mask = 0;     ///< Violated optional predicates.
  double penalty = 0.0;  ///< Σ π over the mask.
};

/// The cached output of one plan step: the tuple set alive after the
/// step's extend + dominance prune — the exact state the evaluator's
/// pipeline carries between steps, so execution can resume from any
/// cached prefix as if the prefix had just been computed.
struct CachedStepResult {
  std::vector<ExecTuple> tuples;
  /// True when the tuples were computed under answer exclusion at or past
  /// the distinguished step (incremental DPO): the set is missing tuples
  /// for already-answered nodes, so it is only reusable inside the same
  /// run (where the exclusion set has grown monotonically and a re-filter
  /// restores exactness) — never via the shared tier.
  bool tainted = false;
  size_t bytes = 0;  ///< Approximate footprint, the LRU charge.

  static size_t ApproxBytes(const std::vector<ExecTuple>& tuples);
};

/// Builds the full cache key of one step's output from everything the
/// tuple set depends on beyond the plan prefix itself: the corpus
/// generation (invalidation), the eval mode, the rank scheme and the
/// pruning k (both feed the threshold bound in encoded modes; kExact
/// passes prune_k = 0 since it never prunes). Keying on (scheme, k) is
/// exact only because cached tuples are pure functions of (ss, ks) — the
/// cache-exactness property (FX304) the scheme's SchemeCertificate must
/// prove; topk.cc leaves the cache off for any scheme whose certificate
/// refutes it (DESIGN.md §16).
uint64_t StepCacheKey(uint64_t step_fingerprint, uint64_t corpus_generation,
                      uint8_t mode, uint8_t scheme, uint64_t prune_k);

/// One tier of the sub-plan result cache (DESIGN.md §12): a thread-safe,
/// byte-budgeted LRU from step cache keys to immutable step results.
/// Entries are shared-const, so a reader keeps its result alive across a
/// concurrent eviction. Two instances play different roles:
///   - the *run tier*: one instance per TopK call, letting DPO round i+1
///     reuse round i's shared plan prefix (tainted entries allowed);
///   - the *shared tier*: the process-wide Global() instance, which
///     survives across queries (untainted entries only) and makes
///     repeated evaluation of a query warm-fast.
class ResultCache {
 public:
  /// Default byte budget of the shared (process-wide) tier.
  static constexpr size_t kDefaultSharedBudgetBytes = size_t{256} << 20;

  /// The process-wide shared tier. Its budget is adjustable via
  /// SetBudget (surfaced as FlexPath::SetSharedResultCacheBudget and the
  /// CLI --cache-mb flag).
  static ResultCache& Global();

  /// `export_metrics` mirrors hit/miss/insert/evict counts and
  /// bytes/entries gauges into the global MetricsRegistry under cache.*
  /// (the shared tier does; run tiers skip it — their activity is
  /// per-query and lands in ExecCounters instead).
  explicit ResultCache(size_t budget_bytes, bool export_metrics = false);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry for `key` (marking it most-recently-used), or null.
  std::shared_ptr<const CachedStepResult> Get(uint64_t key);

  /// Inserts `entry`, charged at entry->bytes, evicting LRU entries to
  /// stay within budget. Oversized entries are dropped silently.
  void Put(uint64_t key, std::shared_ptr<const CachedStepResult> entry);

  void SetBudget(size_t budget_bytes);
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget = 0;
  };
  Stats GetStats() const;

 private:
  void ExportMetrics() REQUIRES(mu_);

  mutable Mutex mu_;
  LruByteCache<uint64_t, CachedStepResult> lru_ GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  const bool export_metrics_;
};

/// Cache context for one PlanEvaluator::Evaluate call. Null pointers
/// disable the corresponding tier; a null context disables caching
/// entirely (the default — the cached and uncached paths produce
/// byte-identical answers, penalties and relaxation metadata, enforced
/// by tests/result_cache_test.cc).
struct EvalCacheContext {
  ResultCache* run = nullptr;     ///< Run-local tier (tainted entries OK).
  ResultCache* shared = nullptr;  ///< Process-wide tier (untainted only).
  uint64_t corpus_generation = 0;
  /// Incremental DPO (kExact only): answers already produced by earlier
  /// rounds. Tuples whose distinguished binding is in this set are
  /// dropped as soon as the distinguished variable binds — the round
  /// evaluates only its delta. Sound because the DPO merge deduplicates
  /// answers by first (= best-scored) round anyway, the distinguished
  /// step is always in every dominance live set (so exclusion removes
  /// whole dominance groups and never changes surviving ones), and the
  /// set only grows within a run.
  const std::unordered_set<NodeRef, NodeRefHash>* exclude = nullptr;
};

}  // namespace flexpath

#endif  // FLEXPATH_EXEC_RESULT_CACHE_H_
